package platform

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
	"dynacrowd/internal/workload"
)

// TestWireDifferentialSwarm replays one scripted multi-round auction —
// bids, assignments, completions, defaults with re-allocation, payment
// clawbacks — under three wire configurations: every agent on JSON,
// every agent on the binary framing, and a mixed swarm. The framing is
// transport dressing and nothing else, so the auction outcome and every
// wire-independent operational tally must be bit-identical across the
// three runs.
func TestWireDifferentialSwarm(t *testing.T) {
	const agents = 10
	// Seeded script, shared verbatim by all three runs. Agent 0 is
	// pinned cheap, short-lived, and non-completing so the
	// default/clawback path is provably exercised: it wins immediately,
	// departs (and is paid) before its completion deadline, and never
	// reports — the payment must be clawed back and the task re-offered.
	rng := workload.NewRNG(42)
	costs := make([]float64, agents)
	durations := make([]core.Slot, agents)
	for i := range costs {
		costs[i] = rng.Uniform(5, 45)
		durations[i] = core.Slot(2 + rng.Intn(7))
	}
	costs[0], durations[0] = 1, 2
	schedule := make([]int, 64) // tasks announced per tick, both rounds
	for i := range schedule {
		schedule[i] = rng.Intn(3)
	}

	wires := func(pick func(i int) string) []string {
		w := make([]string, agents)
		for i := range w {
			w[i] = pick(i)
		}
		return w
	}
	runs := map[string][]string{
		"json":   wires(func(int) string { return protocol.WireJSON }),
		"binary": wires(func(int) string { return protocol.WireBinary }),
		"mixed": wires(func(i int) string {
			if i%2 == 0 {
				return protocol.WireBinary
			}
			return protocol.WireJSON
		}),
	}

	type result struct {
		outcome *core.Outcome
		stats   Stats
	}
	results := make(map[string]result)
	for name, wireByAgent := range runs {
		outcome, stats := runWireDifferentialScript(t, wireByAgent, costs, durations, schedule)
		results[name] = result{outcome, stats}
		t.Logf("%s: welfare %.2f paid %.2f defaults %d reallocated %d clawbacks %d (%.2f)",
			name, stats.TotalWelfare, stats.TotalPaid, stats.WinnersDefaulted,
			stats.TasksReallocated, stats.ClawbacksIssued, stats.ClawbackTotal)
	}

	// The script must actually reach the paths it claims to compare.
	ref := results["json"]
	if ref.stats.CompletionsReported == 0 || ref.stats.WinnersDefaulted == 0 || ref.stats.ClawbacksIssued == 0 {
		t.Fatalf("script did not exercise the completion lifecycle: %+v", ref.stats)
	}
	if ref.stats.RoundsCompleted != 2 {
		t.Fatalf("script completed %d rounds, want 2", ref.stats.RoundsCompleted)
	}

	for name, got := range results {
		if !reflect.DeepEqual(got.outcome, ref.outcome) {
			t.Errorf("outcome diverges between json and %s swarms:\n json:   %+v\n %s: %+v",
				name, ref.outcome, name, got.outcome)
		}
		// Every tally the wire format could plausibly perturb — money,
		// allocation, lifecycle — must agree exactly. (Message counts
		// are intentionally excluded: the formats split them by design.)
		refK, gotK := wireIndependentStats(ref.stats), wireIndependentStats(got.stats)
		if refK != gotK {
			t.Errorf("stats diverge between json and %s swarms:\n json:   %+v\n %s: %+v",
				name, refK, name, gotK)
		}
	}
}

// wireIndependentStats projects Stats onto the fields the wire format
// must not influence.
func wireIndependentStats(s Stats) [13]float64 {
	return [13]float64{
		float64(s.BidsAccepted), float64(s.BidsRejected),
		float64(s.TasksAnnounced), float64(s.TasksServed),
		float64(s.PaymentsIssued), s.TotalPaid, s.TotalWelfare,
		float64(s.CompletionsReported), float64(s.WinnersDefaulted),
		float64(s.TasksReallocated), float64(s.ClawbacksIssued),
		s.ClawbackTotal, float64(s.RoundsCompleted),
	}
}

// diffAgent is a scripted wire client that records everything the
// platform tells it, so the test can react (complete assignments) and
// synchronize (await acks) deterministically.
type diffAgent struct {
	conn net.Conn
	w    *protocol.Writer

	mu        sync.Mutex
	phone     core.PhoneID
	round     int
	acks      int
	asserts   []string // protocol errors observed (must stay empty)
	assigns   []diffAssign
	completed map[diffAssign]bool
}

type diffAssign struct {
	round int
	task  core.TaskID
}

func (a *diffAgent) readLoop(r *protocol.Reader) {
	var m protocol.Message
	for {
		if err := r.ReceiveInto(&m); err != nil {
			return
		}
		a.mu.Lock()
		switch m.Type {
		case protocol.TypeWelcome:
			a.phone, a.round = m.Phone, m.Round
		case protocol.TypeAck:
			a.acks++
		case protocol.TypeAssign:
			a.assigns = append(a.assigns, diffAssign{round: a.round, task: m.Task})
		case protocol.TypeError:
			a.asserts = append(a.asserts, m.Error)
		}
		a.mu.Unlock()
	}
}

// runWireDifferentialScript plays the fixed two-round script against a
// fresh server with the given per-agent wire formats and returns the
// final outcome and stats.
func runWireDifferentialScript(t *testing.T, wireByAgent []string, costs []float64, durations []core.Slot, schedule []int) (*core.Outcome, Stats) {
	t.Helper()
	ln := chaos.NewMemListener(len(wireByAgent))
	srv, err := Serve(ln, Config{
		Slots:              8,
		Value:              30,
		Rounds:             2,
		CompletionDeadline: 2,
		WriteTimeout:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	swarm := make([]*diffAgent, len(wireByAgent))
	for i, wire := range wireByAgent {
		raw := newRawWireAgent(t, ln, wire)
		a := &diffAgent{conn: raw.conn, w: raw.w, phone: -1, completed: map[diffAssign]bool{}}
		go a.readLoop(raw.r)
		swarm[i] = a
		defer a.conn.Close()
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	completions := 0
	tick := 0
	for round := 1; round <= 2; round++ {
		// Sequential ack-awaited bids: admission order, and therefore
		// the phone-ID assignment, is identical in every run.
		for i, a := range swarm {
			wantAcks := a.ackCount() + 1
			if err := a.w.Send(&protocol.Message{
				Type: protocol.TypeBid, Name: "p", Duration: durations[i], Cost: costs[i],
			}); err != nil {
				t.Fatalf("round %d bid %d: %v", round, i, err)
			}
			waitFor("bid ack", func() bool { return a.ackCount() >= wantAcks })
		}
		// Tick the round to completion (including any completion-drain
		// slots past the final one), completing assignments between
		// ticks: every agent except the non-reporters (i%3 == 0)
		// acknowledges each task as soon as it learns of it.
		for srv.Stats().RoundsCompleted < round {
			if tick >= len(schedule) {
				t.Fatalf("round %d did not complete within %d ticks", round, len(schedule))
			}
			if _, err := srv.Tick(schedule[tick]); err != nil {
				t.Fatal(err)
			}
			tick++
			waitDrained(t, srv, 10*time.Second)
			// waitDrained means the assign notices reached the wire, not
			// that the agents' read loops parsed them yet; a starved
			// reader could miss a completion window. Every assign notice
			// corresponds to an allocation or re-allocation (no resumes
			// here), so barrier until the swarm has observed them all.
			wantAssigns := func() int {
				st := srv.Stats()
				return st.TasksServed + st.TasksReallocated
			}()
			waitFor("assign delivery", func() bool {
				total := 0
				for _, a := range swarm {
					total += a.assignCount()
				}
				return total >= wantAssigns
			})
			for i, a := range swarm {
				if i%3 == 0 {
					continue
				}
				for _, c := range a.pendingCompletes(round) {
					completions++
					if err := a.w.Send(&c); err != nil {
						t.Fatalf("round %d complete: %v", round, err)
					}
				}
			}
			want := completions
			waitFor("completion processing", func() bool {
				st := srv.Stats()
				return st.CompletionsReported+st.CompletionsRejected >= want
			})
		}
	}

	outcome, stats := srv.Outcome(), srv.Stats()
	for i, a := range swarm {
		a.mu.Lock()
		errs := a.asserts
		a.mu.Unlock()
		if len(errs) > 0 {
			t.Fatalf("agent %d saw protocol errors: %v", i, errs)
		}
	}
	return outcome, stats
}

func (a *diffAgent) ackCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acks
}

func (a *diffAgent) assignCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.assigns)
}

// pendingCompletes returns complete messages for this round's
// assignments not yet reported, marking them reported.
func (a *diffAgent) pendingCompletes(round int) []protocol.Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []protocol.Message
	for _, as := range a.assigns {
		if as.round != round || a.completed[as] || a.phone < 0 {
			continue
		}
		a.completed[as] = true
		out = append(out, protocol.Message{
			Type: protocol.TypeComplete, Phone: a.phone, Task: as.task, Round: round,
		})
	}
	return out
}
