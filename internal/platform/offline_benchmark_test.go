package platform

import (
	"math"
	"testing"

	"dynacrowd/internal/core"
)

// TestOfflineBenchmarkStats: a server configured with an offline
// benchmark engine solves ω* when the round closes, and the stats
// expose it. The optimum must match a direct offline solve of the
// equivalent batch instance and dominate the realized online welfare
// (the live competitive-ratio check).
func TestOfflineBenchmarkStats(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 25, OfflineBenchmark: core.IntervalOffline})
	a := dialAgent(t, s.Addr())
	b := dialAgent(t, s.Addr())

	if err := a.SubmitBid("a", 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitBid("b", 3, 7); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatal("server not done after final slot")
	}

	st := s.Stats()
	if st.OfflineRounds != 1 {
		t.Fatalf("OfflineRounds = %d, want 1", st.OfflineRounds)
	}
	want, err := (&core.OfflineMechanism{}).Welfare(s.Instance())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.OfflineOptimum-want) > 1e-9 {
		t.Fatalf("OfflineOptimum = %g, want batch offline optimum %g", st.OfflineOptimum, want)
	}
	if st.OfflineOptimum < st.TotalWelfare-1e-9 {
		t.Fatalf("offline optimum %g below online welfare %g", st.OfflineOptimum, st.TotalWelfare)
	}
}

// TestOfflineBenchmarkDisabled: without the engine the tallies stay
// zero — the solve must not run at all on the default path.
func TestOfflineBenchmarkDisabled(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("a", 1, 3); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.OfflineRounds != 0 || st.OfflineOptimum != 0 {
		t.Fatalf("benchmark ran while disabled: %+v", st)
	}
}

// TestOfflineBenchmarkMultiRound: the tally accumulates across
// configured rounds, one solve per round close.
func TestOfflineBenchmarkMultiRound(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 15, Rounds: 3, OfflineBenchmark: core.SSPOffline})
	a := dialAgent(t, s.Addr())
	for round := 0; round < 3; round++ {
		if err := a.SubmitBid("a", 1, 5); err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 2; slot++ {
			if _, err := s.Tick(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.OfflineRounds != 3 {
		t.Fatalf("OfflineRounds = %d, want 3", st.OfflineRounds)
	}
	if st.OfflineOptimum < st.TotalWelfare-1e-9 {
		t.Fatalf("cumulative optimum %g below cumulative welfare %g", st.OfflineOptimum, st.TotalWelfare)
	}
}
