package platform

import (
	"log/slog"
	"math"
	"net"
	"testing"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// chaosServer starts a platform server behind a fault-injecting
// listener.
func chaosServer(t *testing.T, plan chaos.Plan, cfg Config) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve(chaos.Wrap(ln, plan), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStalledAgentDoesNotStallTick: an agent whose connection stops
// accepting bytes entirely (writes stall forever) must not delay the
// slot clock. The session's bounded queue overflows, the slow consumer
// is disconnected and counted, and every Tick returns promptly.
func TestStalledAgentDoesNotStallTick(t *testing.T) {
	s := chaosServer(t, chaos.Plan{StallWrites: true}, Config{
		Slots: 3, Value: 10,
		OutboundQueue: 2,
		WriteTimeout:  200 * time.Millisecond,
	})

	// A raw client that bids and never reads; the ack write already
	// stalls the session's writer.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"bid","name":"stalled","duration":3,"cost":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the server queue the bid

	start := time.Now()
	for !s.Done() {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("ticks took %v with a stalled agent; the slot clock must not wait on peers", elapsed)
	}

	st := s.Stats()
	if st.SlowConsumers == 0 {
		t.Fatalf("stalled session not counted as slow consumer: %+v", st)
	}
	if st.MessagesDropped == 0 {
		t.Fatalf("no dropped messages recorded: %+v", st)
	}
	// The auction kept the stalled phone's bid (it promised availability).
	if s.Outcome().Allocation.NumServed() == 0 {
		t.Fatal("stalled phone's bid lost from the auction")
	}
}

// TestWriteDeadlineKillsBlockedWriter: a session write that cannot
// complete within WriteTimeout fails and tears the session down instead
// of blocking its writer forever. net.Pipe is unbuffered, so an unread
// write blocks until the deadline fires.
func TestWriteDeadlineKillsBlockedWriter(t *testing.T) {
	srv := &Server{cfg: Config{WriteTimeout: 50 * time.Millisecond, Logger: slog.New(discardHandler{})}}
	server, client := net.Pipe()
	defer client.Close()
	sess := newSession(srv, server)
	srv.wg.Add(1)
	go sess.writeLoop()

	sess.send(&protocol.Message{Type: protocol.TypeSlot, Slot: 1})
	deadline := time.After(2 * time.Second)
	for !sess.gone.Load() {
		select {
		case <-deadline:
			t.Fatal("writer still alive long after the write deadline")
		case <-time.After(5 * time.Millisecond):
		}
	}
	srv.wg.Wait()
}

// TestRunClockStopsOnClose: closing the server (and with it the
// listener) mid-round ends RunClock cleanly instead of surfacing a raw
// tick error.
func TestRunClockStopsOnClose(t *testing.T) {
	s := newTestServer(t, Config{Slots: 100000, Value: 10})
	done := make(chan error, 1)
	go func() { done <- s.RunClock(time.Millisecond, func(core.Slot) int { return 0 }) }()
	time.Sleep(15 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunClock returned %v on close, want clean nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunClock did not stop after Close")
	}
}

// TestDurationOverflowClamped: a duration large enough to wrap the
// departure arithmetic negative is clamped to the round end, not
// admitted with a bogus window. (The wire layer already rejects such
// durations; this guards the in-process path.)
func TestDurationOverflowClamped(t *testing.T) {
	s := newTestServer(t, Config{Slots: 5, Value: 10})
	server, client := net.Pipe()
	defer client.Close()
	defer server.Close()
	sess := newSession(s, server)
	if err := s.enqueueBid(&protocol.Message{
		Type:     protocol.TypeBid,
		Name:     "overflow",
		Duration: core.Slot(math.MaxInt64),
		Cost:     1,
	}, sess); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(0); err != nil {
		t.Fatalf("tick rejected overflowing duration instead of clamping: %v", err)
	}
	inst := s.Instance()
	if inst.NumPhones() != 1 || inst.Bids[0].Departure != 5 {
		t.Fatalf("departure = %+v, want clamp to slot 5", inst.Bids)
	}
}

// TestLatencyAndChunkingPreserveSemantics: pure delay plus pathological
// TCP segmentation must not change what an agent experiences.
func TestLatencyAndChunkingPreserveSemantics(t *testing.T) {
	s := chaosServer(t, chaos.Plan{
		Seed:        9,
		LatencyProb: 0.5,
		MaxLatency:  3 * time.Millisecond,
		ChunkBytes:  5,
	}, Config{Slots: 3, Value: 10})

	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("chunked", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	w := waitEvent(t, a, EventWelcome)
	if w.Phone != 0 || w.Departure != 2 {
		t.Fatalf("welcome = %+v", w)
	}
	waitEvent(t, a, EventAssign)
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	pay := waitEvent(t, a, EventPayment)
	if pay.Amount != 10 {
		t.Fatalf("payment = %+v, want reserve 10", pay)
	}
}
