package platform

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dynacrowd/internal/obs"
)

// scrape fetches the Prometheus exposition from the obs HTTP server.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the sample value of an exactly-named series.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, body)
	return 0
}

// TestObsEndToEnd plays a seeded two-round auction with observability
// enabled and checks that the scraped cumulative welfare and payment
// totals match what the auction reported over the wire, that the hot
// paths registered their instruments, and that Close flushes the trace
// sink.
func TestObsEndToEnd(t *testing.T) {
	sink := &obs.MemorySink{}
	o, err := obs.New(obs.Options{Addr: "127.0.0.1:0", Sinks: []obs.Sink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Slots: 3, Value: 10, Rounds: 2, Obs: o})
	a1 := dialAgent(t, s.Addr())
	a2 := dialAgent(t, s.Addr())

	rng := rand.New(rand.NewSource(42))
	var wantWelfare, wantPaid float64
	for round := 1; round <= 2; round++ {
		c1 := 1 + 7*rng.Float64()
		c2 := 1 + 7*rng.Float64()
		if err := a1.SubmitBid(fmt.Sprintf("a1-r%d", round), 2, c1); err != nil {
			t.Fatal(err)
		}
		if err := a2.SubmitBid(fmt.Sprintf("a2-r%d", round), 2, c2); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(2); err != nil { // slot 1: both admitted, both win
			t.Fatal(err)
		}
		waitEvent(t, a1, EventAssign)
		waitEvent(t, a2, EventAssign)
		if _, err := s.Tick(0); err != nil { // slot 2: departures, payments
			t.Fatal(err)
		}
		waitEvent(t, a1, EventPayment)
		waitEvent(t, a2, EventPayment)
		if _, err := s.Tick(0); err != nil { // slot 3: round closes
			t.Fatal(err)
		}
		end := waitEvent(t, a1, EventEnd)
		if end.Round != round {
			t.Fatalf("end round = %d, want %d", end.Round, round)
		}
		wantWelfare += end.Welfare
		wantPaid += end.Payments
	}
	if !s.Done() {
		t.Fatal("server not done after both rounds")
	}

	body := scrape(t, o.HTTP.Addr())
	const eps = 1e-9
	if got := metricValue(t, body, "dynacrowd_platform_welfare_total"); got < wantWelfare-eps || got > wantWelfare+eps {
		t.Fatalf("scraped welfare_total = %g, wire total = %g", got, wantWelfare)
	}
	if got := metricValue(t, body, "dynacrowd_platform_paid_total"); got < wantPaid-eps || got > wantPaid+eps {
		t.Fatalf("scraped paid_total = %g, wire total = %g", got, wantPaid)
	}
	if got := metricValue(t, body, "dynacrowd_platform_rounds_completed_total"); got != 2 {
		t.Fatalf("rounds_completed_total = %g, want 2", got)
	}
	if got := metricValue(t, body, "dynacrowd_platform_bids_accepted_total"); got != 4 {
		t.Fatalf("bids_accepted_total = %g, want 4", got)
	}
	// The instrumented hot paths registered and observed.
	for _, want := range []string{
		`dynacrowd_core_slot_alloc_seconds_bucket{le="+Inf"}`,
		`dynacrowd_core_payment_seconds_bucket{le="+Inf"}`,
		`dynacrowd_core_engine_invocations_total{engine="cascade"}`,
		"dynacrowd_platform_tick_seconds_count",
		"dynacrowd_platform_session_queue_depth",
		"dynacrowd_trace_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %s", want)
		}
	}
	if got := metricValue(t, body, "dynacrowd_platform_tick_seconds_count"); got != 6 {
		t.Fatalf("tick_seconds_count = %g, want 6 (3 slots x 2 rounds)", got)
	}
	if got := metricValue(t, body, `dynacrowd_core_engine_invocations_total{engine="cascade"}`); got < 4 {
		t.Fatalf("cascade invocations = %g, want >= 4 (one per paid winner)", got)
	}

	// Stats mirrors the same counters without the scrape.
	st := s.Stats()
	if st.RoundsCompleted != 2 || st.BidsAccepted != 4 || st.PaymentsIssued != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalPaid < wantPaid-eps || st.TotalPaid > wantPaid+eps {
		t.Fatalf("stats TotalPaid = %g, want %g", st.TotalPaid, wantPaid)
	}
	if st.TotalWelfare < wantWelfare-eps || st.TotalWelfare > wantWelfare+eps {
		t.Fatalf("stats TotalWelfare = %g, want %g", st.TotalWelfare, wantWelfare)
	}

	// Close flushes the tracer into the sink and stops the HTTP server.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.Closed() {
		t.Fatal("trace sink not closed by server Close")
	}
	byType := map[obs.EventType]int{}
	for _, ev := range sink.Events() {
		byType[ev.Type]++
	}
	for typ, want := range map[obs.EventType]int{
		obs.EventRoundOpen:   2,
		obs.EventRoundClose:  2,
		obs.EventBidAccepted: 4,
		obs.EventAllocation:  4,
		obs.EventPayment:     4,
		obs.EventDeparture:   4,
	} {
		if byType[typ] != want {
			t.Fatalf("trace %s events = %d, want %d (all: %v)", typ, byType[typ], want, byType)
		}
	}
	if _, err := http.Get("http://" + o.HTTP.Addr() + "/metrics"); err == nil {
		t.Fatal("obs HTTP server still serving after Close")
	}
}

// TestStatsRace hammers Stats() and the Prometheus scrape concurrently
// with live ticks and wire traffic. Run under -race this proves the
// snapshot path takes no lock and touches no unsynchronized state.
func TestStatsRace(t *testing.T) {
	o, err := obs.New(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Slots: 50, Value: 10, Obs: o})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("racer", 40, 3); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Stats()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				o.Registry.WritePrometheus(io.Discard)
			}
		}
	}()

	for i := 0; i < 50; i++ {
		if _, err := s.Tick(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.TasksAnnounced == 0 || st.Slot != 50 {
		t.Fatalf("stats after round = %+v", st)
	}
}
