package platform

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// TestCheckpointResume: kill the platform mid-round, resume on a fresh
// port, finish the round — the combined outcome equals an uninterrupted
// batch run.
func TestCheckpointResume(t *testing.T) {
	cfg := Config{Slots: 4, Value: 20}
	s1 := newTestServer(t, cfg)

	a1 := dialAgent(t, s1.Addr())
	if err := a1.SubmitBid("early", 4, 5); err != nil {
		t.Fatal(err)
	}
	a2 := dialAgent(t, s1.Addr())
	if err := a2.SubmitBid("rival", 4, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Tick(1); err != nil { // slot 1: both admitted, task to "early"
		t.Fatal(err)
	}
	checkpoint, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := Resume("127.0.0.1:0", cfg, checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Done() {
		t.Fatal("resumed round already done")
	}

	// A new phone joins the resumed round.
	a3 := dialAgent(t, s2.Addr())
	if err := a3.SubmitBid("late", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Tick(1); err != nil { // slot 2
		t.Fatal(err)
	}
	for !s2.Done() {
		if _, err := s2.Tick(0); err != nil {
			t.Fatal(err)
		}
	}

	inst := s2.Instance()
	if inst.NumPhones() != 3 || inst.NumTasks() != 2 {
		t.Fatalf("resumed instance has %d phones / %d tasks", inst.NumPhones(), inst.NumTasks())
	}
	batch, err := (&core.OnlineMechanism{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	out := s2.Outcome()
	if math.Abs(out.Welfare-batch.Welfare) > 1e-9 {
		t.Fatalf("resumed welfare %g != batch %g", out.Welfare, batch.Welfare)
	}
	for i := range batch.Payments {
		if math.Abs(out.Payments[i]-batch.Payments[i]) > 1e-9 {
			t.Fatalf("payment[%d]: %g != %g", i, out.Payments[i], batch.Payments[i])
		}
	}
}

func TestResumeRejectsGarbage(t *testing.T) {
	if _, err := Resume("127.0.0.1:0", Config{Slots: 3, Value: 10}, []byte("{broken")); err == nil {
		t.Fatal("want error")
	}
}

// TestServerLogging: the structured log captures the auction lifecycle.
func TestServerLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s, err := Listen("127.0.0.1:0", Config{Slots: 2, Value: 10, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("logged", 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(2); err != nil { // one task served, one unserved
		t.Fatal(err)
	}
	if _, err := s.Tick(0); err != nil { // round ends
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"phone admitted", "name=logged",
		"task assigned",
		"tasks unserved", "count=1",
		"payment issued",
		"round complete",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
}

// TestServerLoggingProtocolError: garbage from a client is logged.
func TestServerLoggingProtocolError(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s, err := Listen("127.0.0.1:0", Config{Slots: 2, Value: 10, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := dialAgent(t, s.Addr())
	_ = a.send(&protocol.Message{Type: "warble"})
	// Wait for the error to round-trip.
	ev := <-a.Events()
	if ev.Kind != EventError {
		t.Fatalf("event %v, want error", ev.Kind)
	}
	if !strings.Contains(buf.String(), "protocol error") {
		t.Fatalf("log missing protocol error:\n%s", buf.String())
	}
}

// TestStatsCounters: the operational counters track the round.
func TestStatsCounters(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("counted", 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := a.SubmitBid("dup", 1, 4); err == nil {
		t.Fatal("duplicate bid accepted")
	}
	if _, err := s.Tick(2); err != nil { // one served, one unserved
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Slot != 1 || st.Connections != 1 || st.LiveConnections != 1 {
		t.Fatalf("connection stats: %+v", st)
	}
	if st.BidsAccepted != 1 || st.BidsRejected != 1 {
		t.Fatalf("bid stats: %+v", st)
	}
	if st.TasksAnnounced != 2 || st.TasksServed != 1 || st.TasksUnserved != 1 {
		t.Fatalf("task stats: %+v", st)
	}
	if st.PaymentsIssued != 1 || st.TotalPaid != 10 {
		t.Fatalf("payment stats: %+v", st)
	}
	a.Close()
	time.Sleep(20 * time.Millisecond)
	if live := s.Stats().LiveConnections; live != 0 {
		t.Fatalf("live connections = %d after close", live)
	}
}
