package platform

import (
	"math"
	"net"
	"strings"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// readReply reads messages until an ack or error arrives, skipping
// state replays (welcome, assign, payment) a resume interleaves.
func readReply(t *testing.T, conn net.Conn, r *protocol.Reader) *protocol.Message {
	t.Helper()
	for {
		m := readMsg(t, conn, r)
		if m.Type == protocol.TypeAck || m.Type == protocol.TypeError {
			return m
		}
	}
}

// TestCompletionReportLifecycle: the happy path over the wire. A winner
// reports its task done, is paid at departure, and the round closes
// with completion counters reflecting exactly one delivery.
func TestCompletionReportLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10, CompletionDeadline: 2})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("dutiful", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: admitted + assigned
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)
	if err := a.ReportCompletion(); err != nil {
		t.Fatal(err)
	}
	// A second report has nothing left to complete: the agent knows
	// locally, without a round trip.
	if err := a.ReportCompletion(); err == nil || !strings.Contains(err.Error(), "no unresolved assignment") {
		t.Fatalf("second ReportCompletion: %v", err)
	}
	if _, err := s.Tick(0); err != nil { // slot 2: departure, payment
		t.Fatal(err)
	}
	pay := waitEvent(t, a, EventPayment)
	if pay.Amount != 10 {
		t.Fatalf("payment = %+v, want reserve 10", pay)
	}
	if _, err := s.Tick(0); err != nil { // slot 3: round ends
		t.Fatal(err)
	}
	waitEvent(t, a, EventEnd)
	if !s.Done() {
		t.Fatal("server not done after final slot with no outstanding tasks")
	}
	st := s.Stats()
	if st.CompletionsReported != 1 || st.WinnersDefaulted != 0 || st.ClawbacksIssued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCompletionRejectionSurfaces scripts every refusal path at the
// wire level: each misuse draws a typed error naming the reason, bumps
// CompletionsRejected, and leaves the round undisturbed.
func TestCompletionRejectionSurfaces(t *testing.T) {
	// Tracking disabled: the report is refused outright.
	off := newTestServer(t, Config{Slots: 2, Value: 10})
	conn, r, w := rawConn(t, off.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeComplete, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if m := readReply(t, conn, r); m.Type != protocol.TypeError || !strings.Contains(m.Error, core.ErrNotTracking.Error()) {
		t.Fatalf("tracking-off reply = %+v", m)
	}
	if st := off.Stats(); st.CompletionsRejected != 1 {
		t.Fatalf("CompletionsRejected = %d, want 1", st.CompletionsRejected)
	}

	s := newTestServer(t, Config{Slots: 4, Value: 10, CompletionDeadline: 3})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("winner", 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)

	conn, r, w = rawConn(t, s.Addr())
	send := func(m *protocol.Message) *protocol.Message {
		t.Helper()
		if err := w.Send(m); err != nil {
			t.Fatal(err)
		}
		return readReply(t, conn, r)
	}
	// Stale round.
	if m := send(&protocol.Message{Type: protocol.TypeComplete, Phone: 0, Round: 7}); m.Type != protocol.TypeError || !strings.Contains(m.Error, "round") {
		t.Fatalf("stale-round reply = %+v", m)
	}
	// Unknown phone.
	if m := send(&protocol.Message{Type: protocol.TypeComplete, Phone: 9, Round: 1}); m.Type != protocol.TypeError || !strings.Contains(m.Error, "unknown phone") {
		t.Fatalf("unknown-phone reply = %+v", m)
	}
	// Right phone, wrong connection: completion reports cannot be forged
	// from a session the phone is not attached to.
	if m := send(&protocol.Message{Type: protocol.TypeComplete, Phone: 0, Task: 0, Round: 1}); m.Type != protocol.TypeError || !strings.Contains(m.Error, "resume first") {
		t.Fatalf("unattached reply = %+v", m)
	}

	// Attach via resume, then exercise the in-auction refusals.
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if m := readMsg(t, conn, r); m.Type != protocol.TypeWelcome {
		t.Fatalf("resume welcome = %+v", m)
	}
	if m := readMsg(t, conn, r); m.Type != protocol.TypeAssign {
		t.Fatalf("resume assign replay = %+v", m)
	}
	// Task mismatch.
	if m := send(&protocol.Message{Type: protocol.TypeComplete, Phone: 0, Task: 7, Round: 1}); m.Type != protocol.TypeError || !strings.Contains(m.Error, "holds task") {
		t.Fatalf("task-mismatch reply = %+v", m)
	}
	// The genuine report is accepted...
	if m := send(&protocol.Message{Type: protocol.TypeComplete, Phone: 0, Task: 0, Round: 1}); m.Type != protocol.TypeAck {
		t.Fatalf("genuine report reply = %+v", m)
	}
	// ...and a duplicate is the typed already-completed refusal.
	if m := send(&protocol.Message{Type: protocol.TypeComplete, Phone: 0, Task: 0, Round: 1}); m.Type != protocol.TypeError || !strings.Contains(m.Error, core.ErrAlreadyCompleted.Error()) {
		t.Fatalf("duplicate report reply = %+v", m)
	}

	st := s.Stats()
	if st.CompletionsRejected != 5 || st.CompletionsReported != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WinnersDefaulted != 0 {
		t.Fatalf("rejections perturbed the round: %+v", st)
	}
}

// TestDefaultClawbackReallocationOverWire: a winner is paid at its
// departure, stays silent past the completion deadline, and is
// defaulted — the payment is clawed back over the wire, the task moves
// to the standby bidder, and the books balance at round end.
func TestDefaultClawbackReallocationOverWire(t *testing.T) {
	s := newTestServer(t, Config{Slots: 4, Value: 10, CompletionDeadline: 1})
	flaky := dialAgent(t, s.Addr())
	backup := dialAgent(t, s.Addr())
	if err := flaky.SubmitBid("flaky", 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := backup.SubmitBid("backup", 4, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: flaky wins, departs, is paid
		t.Fatal(err)
	}
	pay := waitEvent(t, flaky, EventPayment)
	if pay.Amount != 6 {
		t.Fatalf("winner paid %g, want critical value 6 (backup's cost)", pay.Amount)
	}

	// flaky never reports. Its deadline (assignment slot 1 + 1) lapses
	// at the slot-2 tick: defaulted, clawed back, task re-allocated.
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	cb := waitEvent(t, flaky, EventClawback)
	if cb.Amount != 6 {
		t.Fatalf("clawback = %+v, want the issued 6 revoked", cb)
	}
	asg := waitEvent(t, backup, EventAssign)
	if asg.Task != 0 {
		t.Fatalf("re-allocated assign = %+v", asg)
	}
	if err := backup.ReportCompletion(); err != nil {
		t.Fatal(err)
	}

	for !s.Done() {
		if _, err := s.Tick(0); err != nil {
			t.Fatal(err)
		}
	}
	pay = waitEvent(t, backup, EventPayment)
	if pay.Amount != 10 {
		t.Fatalf("replacement paid %g, want reserve 10 (no competitor left)", pay.Amount)
	}
	waitEvent(t, backup, EventEnd)

	st := s.Stats()
	if st.WinnersDefaulted != 1 || st.TasksReallocated != 1 || st.ClawbacksIssued != 1 || st.ClawbackTotal != 6 {
		t.Fatalf("stats = %+v", st)
	}
	out := s.Outcome()
	if out.Payments[0] != 0 {
		t.Fatalf("defaulted phone nets %g", out.Payments[0])
	}
	// Conservation: everything issued minus everything revoked is what
	// the final books say the round cost.
	if got := st.TotalPaid - st.ClawbackTotal; math.Abs(got-out.TotalPayment()) > 1e-9 {
		t.Fatalf("issued−revoked = %g, outcome total = %g", got, out.TotalPayment())
	}
}

// TestResumeAfterCompleteReplaysPayment: a winner that completes, loses
// its connection, and is paid while away learns the executed payment on
// resume — an issued payment is never silently lost to a disconnect.
func TestResumeAfterCompleteReplaysPayment(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10, CompletionDeadline: 2})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("ghost", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)
	if err := a.ReportCompletion(); err != nil {
		t.Fatal(err)
	}
	a.Close() // gone before the payment

	if _, err := s.Tick(0); err != nil { // slot 2: departure pays a dead session
		t.Fatal(err)
	}

	conn, r, w := rawConn(t, s.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if m := readMsg(t, conn, r); m.Type != protocol.TypeWelcome || m.Phone != 0 {
		t.Fatalf("resume welcome = %+v", m)
	}
	if m := readMsg(t, conn, r); m.Type != protocol.TypeAssign || m.Task != 0 || m.Slot != 1 {
		t.Fatalf("resume assign replay = %+v", m)
	}
	pay := readMsg(t, conn, r)
	if pay.Type != protocol.TypePayment || pay.Amount != 10 || pay.Slot != 2 {
		t.Fatalf("resume payment replay = %+v, want the executed 10 at slot 2", pay)
	}
}

// TestResumeAfterDefaultReplaysClawback: the mirror image — a phone that
// was defaulted while away learns on resume that its payment (if any)
// is revoked, not that it still holds the task.
func TestResumeAfterDefaultReplaysClawback(t *testing.T) {
	s := newTestServer(t, Config{Slots: 4, Value: 10, CompletionDeadline: 1})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("vanisher", 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // wins, departs, is paid the reserve
		t.Fatal(err)
	}
	waitEvent(t, a, EventPayment)
	a.Close()

	if _, err := s.Tick(0); err != nil { // deadline lapses: defaulted while away
		t.Fatal(err)
	}

	conn, r, w := rawConn(t, s.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if m := readMsg(t, conn, r); m.Type != protocol.TypeWelcome {
		t.Fatalf("resume welcome = %+v", m)
	}
	cb := readMsg(t, conn, r)
	if cb.Type != protocol.TypeClawback || cb.Amount != 10 {
		t.Fatalf("resume clawback replay = %+v, want the revoked 10", cb)
	}
}

// TestDrainExtendsRoundForOutstandingTasks: the final slot's winner
// still has its completion window open when the stream ends; the round
// must not close until the window resolves, and a silent winner is
// defaulted on a virtual drain tick.
func TestDrainExtendsRoundForOutstandingTasks(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10, CompletionDeadline: 2})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("lastminute", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(0); err != nil { // slot 1: admitted, no tasks
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 2 (final): wins + paid
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)
	if s.Done() {
		t.Fatal("round closed with an unresolved completion window")
	}
	// Virtual drain ticks: the deadline (2+2) lapses on the second one.
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("round closed before the completion deadline lapsed")
	}
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("round still open after the drain defaulted the silent winner")
	}
	waitEvent(t, a, EventClawback)
	waitEvent(t, a, EventEnd)
	st := s.Stats()
	if st.WinnersDefaulted != 1 || st.TasksUnreplaced != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if out := s.Outcome(); out.TotalPayment() != 0 {
		t.Fatalf("defaulted-only round paid %g", out.TotalPayment())
	}
}
