package platform

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynacrowd/internal/core"
)

// TestSwarm is the platform stress test: dozens of concurrent agents
// join at random times while the slot clock ticks, some disconnect
// mid-round, and at the end the platform's outcome must equal the batch
// online mechanism run on the instance the platform accumulated — i.e.
// network concurrency must not perturb auction semantics.
func TestSwarm(t *testing.T) {
	const (
		slots     = 12
		numAgents = 40
	)
	s := newTestServer(t, Config{Slots: slots, Value: 30})
	rng := rand.New(rand.NewSource(77))

	type plan struct {
		joinAfterTick int
		duration      core.Slot
		cost          float64
		dropEarly     bool
	}
	plans := make([]plan, numAgents)
	for i := range plans {
		plans[i] = plan{
			joinAfterTick: rng.Intn(slots - 1),
			duration:      core.Slot(1 + rng.Intn(5)),
			cost:          rng.Float64() * 35,
			dropEarly:     rng.Intn(5) == 0,
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		paid     = map[string]float64{}
		assigned = map[string]int{}
		errsCh   = make(chan error, numAgents)
	)

	// Tick barrier: agents wait for their join tick.
	barriers := make([]chan struct{}, slots+1)
	for i := range barriers {
		barriers[i] = make(chan struct{})
	}

	for i, p := range plans {
		name := fmt.Sprintf("swarm-%02d", i)
		wg.Add(1)
		go func(p plan, name string) {
			defer wg.Done()
			<-barriers[p.joinAfterTick]
			a, err := Dial(s.Addr())
			if err != nil {
				errsCh <- err
				return
			}
			defer a.Close()
			if err := a.SubmitBid(name, p.duration, p.cost); err != nil {
				errsCh <- fmt.Errorf("%s: %w", name, err)
				return
			}
			for ev := range a.Events() {
				switch ev.Kind {
				case EventAssign:
					mu.Lock()
					assigned[name]++
					mu.Unlock()
					if p.dropEarly {
						return // winner vanishes before payment
					}
				case EventPayment:
					mu.Lock()
					paid[name] += ev.Amount
					mu.Unlock()
				case EventEnd:
					return
				case EventError:
					errsCh <- fmt.Errorf("%s: %w", name, ev.Err)
					return
				}
			}
		}(p, name)
	}

	close(barriers[0])
	for tk := 1; tk <= slots; tk++ {
		// Let this tick's joiners connect and bid (SubmitBid is
		// synchronous, but give the goroutines time to run).
		time.Sleep(30 * time.Millisecond)
		if _, err := s.Tick(1 + rng.Intn(3)); err != nil {
			t.Fatal(err)
		}
		if tk < len(barriers) {
			close(barriers[tk])
		}
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}

	// Semantics: the accumulated instance re-run through the batch
	// mechanism matches the platform outcome.
	inst := s.Instance()
	batch, err := (&core.OnlineMechanism{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Outcome()
	if math.Abs(out.Welfare-batch.Welfare) > 1e-9 {
		t.Fatalf("platform welfare %g != batch %g", out.Welfare, batch.Welfare)
	}
	if out.Allocation.NumServed() != batch.Allocation.NumServed() {
		t.Fatalf("platform served %d, batch %d", out.Allocation.NumServed(), batch.Allocation.NumServed())
	}
	for i := range batch.Payments {
		if math.Abs(out.Payments[i]-batch.Payments[i]) > 1e-9 {
			t.Fatalf("payment[%d]: platform %g != batch %g", i, out.Payments[i], batch.Payments[i])
		}
	}

	// Every task the platform served went to a phone whose window covers
	// its slot (feasibility under concurrency).
	if err := out.Allocation.Validate(inst); err != nil {
		t.Fatal(err)
	}

	// Winners that stayed connected were paid at least their bid.
	var totalNotified float64
	mu.Lock()
	for _, amount := range paid {
		totalNotified += amount
	}
	mu.Unlock()
	if totalNotified > out.TotalPayment()+1e-9 {
		t.Fatalf("agents notified of %g, platform recorded %g", totalNotified, out.TotalPayment())
	}
}
