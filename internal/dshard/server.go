package dshard

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"dynacrowd/internal/protocol"
	"dynacrowd/internal/shard"
)

// Server is one shard-server process: it accepts coordinator
// connections and serves the replicated-operation protocol over each.
// A server is partition-agnostic — the coordinator's shard-join names
// which partition (and shard count) a connection owns, and the
// snapshot stream that follows seeds the replica — so one binary
// (cmd/crowd-shard) serves any slot in any topology, and a restarted
// server needs no local state to rejoin.
//
// Each connection owns an independent replica. A coordinator that
// loses its connection simply dials again and reseeds; the abandoned
// session's replica is garbage the moment its connection dies.
type Server struct {
	// Logger receives session lifecycle events; nil discards.
	Logger *slog.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve accepts coordinator connections on ln until Close (or a fatal
// listener error). It blocks; run it on its own goroutine when the
// caller needs to keep working.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dshard server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.session(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, severs every live session, and waits for the
// session goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.New(discardHandler{})
}

// session runs one coordinator connection: wire negotiation, join +
// snapshot seed, then the replicated-operation loop. Any protocol or
// replica error ends the session — the coordinator recovers by
// redialing and reseeding, so failing fast is always safe.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	log := s.logger()
	r := protocol.NewReader(conn)
	w := protocol.NewWriter(conn)

	var (
		rep        *shard.Replica
		joinShard  = -1
		joinShards = 0
		snapBuf    []byte
		seq        uint64
		m          protocol.Message
	)
	fail := func(err error) {
		log.Warn("dshard session ended", "remote", conn.RemoteAddr().String(), "err", err.Error())
		// Best-effort: tell the coordinator why before the close lands.
		// The deadline keeps a peer that is itself mid-write (and not
		// reading) from wedging this session against a full pipe.
		conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		w.Send(&protocol.Message{Type: protocol.TypeError, Error: err.Error()})
	}
	// needSeq guards request ops: the coordinator stamps each request
	// with its count of post-seed messages; a mismatch means the two
	// sides disagree about what has been applied, and the only safe
	// move is to force a reseed by dropping the session.
	needSeq := func() error {
		if rep == nil {
			return fmt.Errorf("dshard server: %s before snapshot seed", m.Type)
		}
		if m.Seq != seq {
			return fmt.Errorf("dshard server: %s seq %d, applied %d — divergence", m.Type, m.Seq, seq)
		}
		seq++
		return nil
	}
	// mutate guards fire-and-forget ops.
	mutate := func() error {
		if rep == nil {
			return fmt.Errorf("dshard server: %s before snapshot seed", m.Type)
		}
		seq++
		return nil
	}

	for {
		if err := r.ReceiveInto(&m); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Warn("dshard session read", "remote", conn.RemoteAddr().String(), "err", err.Error())
			}
			return
		}
		switch m.Type {
		case protocol.TypeHello:
			f, err := protocol.FormatByName(m.Wire)
			if err != nil {
				fail(err)
				return
			}
			reply := protocol.Message{Type: protocol.TypeState, Wire: m.Wire}
			if err := w.Send(&reply); err != nil {
				return
			}
			// The state reply is the last JSON message in either
			// direction; both sides switch immediately after it.
			w.SetFormat(f)
			r.SetFormat(f)

		case protocol.TypeShardJoin:
			joinShard, joinShards = m.Shard, m.Shards
			rep, snapBuf, seq = nil, snapBuf[:0], 0

		case protocol.TypeShardSnapshot:
			if joinShard < 0 {
				fail(fmt.Errorf("dshard server: snapshot chunk before shard-join"))
				return
			}
			raw, err := base64.StdEncoding.DecodeString(m.Data)
			if err != nil {
				fail(fmt.Errorf("dshard server: snapshot chunk: %w", err))
				return
			}
			snapBuf = append(snapBuf, raw...)
			if m.Count > 0 {
				continue // more chunks follow
			}
			rep, err = shard.RestoreReplica(snapBuf, joinShard, joinShards)
			if err != nil {
				fail(err)
				return
			}
			snapBuf, seq = snapBuf[:0], 0
			log.Info("dshard replica seeded",
				"remote", conn.RemoteAddr().String(),
				"shard", joinShard, "shards", joinShards,
				"now", int(rep.Now()), "pool", rep.PoolDepth())
			if err := w.Send(&protocol.Message{Type: protocol.TypeAck, Seq: 0}); err != nil {
				return
			}

		case protocol.TypePull, protocol.TypeTopup:
			if err := needSeq(); err != nil {
				fail(err)
				return
			}
			cands, err := rep.Pull(m.Slot, m.Count)
			if err != nil {
				fail(err)
				return
			}
			if err := w.Queue(&protocol.Message{
				Type: protocol.TypeCands, Slot: m.Slot, Count: len(cands), Seq: seq,
			}); err != nil {
				return
			}
			for _, ph := range cands {
				if err := w.Queue(&protocol.Message{Type: protocol.TypeCand, Phone: ph}); err != nil {
					return
				}
			}
			if err := w.Flush(); err != nil {
				return
			}

		case protocol.TypePrice:
			if err := needSeq(); err != nil {
				fail(err)
				return
			}
			amount, err := rep.Price(m.Phone)
			if err != nil {
				fail(err)
				return
			}
			// The payment reply's fixed binary layout carries no seq;
			// the echoed phone is the integrity check on this path.
			if err := w.Send(&protocol.Message{
				Type: protocol.TypePayment, Phone: m.Phone, Amount: amount, Slot: rep.Now(),
			}); err != nil {
				return
			}

		case protocol.TypeShardAdmit:
			if err := apply(mutate, func() error {
				return rep.Admit(m.Phone, m.Slot, m.Departure, m.Cost)
			}); err != nil {
				fail(err)
				return
			}

		case protocol.TypePushback:
			if err := apply(mutate, func() error { return rep.PushBack(m.Phone) }); err != nil {
				fail(err)
				return
			}

		case protocol.TypeShardWin:
			if err := apply(mutate, func() error {
				return rep.WinAt(m.Task, m.Phone, m.Runner, m.Slot)
			}); err != nil {
				fail(err)
				return
			}

		case protocol.TypeShardUnserved:
			if err := apply(mutate, func() error { return rep.Unserved(m.Slot, m.Count) }); err != nil {
				fail(err)
				return
			}

		case protocol.TypeShardPaid:
			if err := apply(mutate, func() error { return rep.Paid(m.Phone, m.Amount, m.Slot) }); err != nil {
				fail(err)
				return
			}

		case protocol.TypeShardDefault:
			if err := apply(mutate, func() error {
				_, err := rep.Default(m.Phone, m.Slot)
				return err
			}); err != nil {
				fail(err)
				return
			}

		case protocol.TypeShardComplete:
			if err := apply(mutate, func() error { return rep.Complete(m.Phone) }); err != nil {
				fail(err)
				return
			}

		case protocol.TypeShardTrack:
			if err := apply(mutate, func() error { rep.Track(m.Count == 1); return nil }); err != nil {
				fail(err)
				return
			}

		default:
			fail(fmt.Errorf("dshard server: unexpected message type %q", m.Type))
			return
		}
	}
}

// apply runs guard then op, returning the first error.
func apply(guard func() error, op func() error) error {
	if err := guard(); err != nil {
		return err
	}
	return op()
}

// discardHandler is a no-op slog handler (mirrors the platform's).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
