// Package dshard runs the online mechanism across processes: shard
// server processes each own one hash partition of the active-bid pool,
// and a coordinator performs the sharded engine's exact k-way top-k
// merge over the wire.
//
// The design promotes internal/shard's in-process architecture to a
// networked deployment without giving up its exactness bar:
//
//   - Each shard server holds a shard.Replica — a full mirror of the
//     auction ledger plus the bid-pool heap of the one partition it
//     owns — seeded over the wire from the engine-portable v1 snapshot
//     and kept current by replicated mutations (protocol.TypeShardAdmit
//     and friends). Full mirroring is what lets a shard price
//     departures locally: the cascade critical-value computation reads
//     the whole bid set.
//
//   - The Coordinator implements core.Auction. It applies every
//     mutation to its own local Replica first and only then replicates,
//     so its snapshot is authoritative at every instant — a shard
//     server is pure disposable cache. Per slot it pipelines one
//     speculative pull per shard (batch sized by the slot's task demand
//     r_t), merges the returned candidate heads in the sequential
//     engine's exact (cost, phone ID) order, tops up a shard only when
//     its winners outrun its batch, and pushes unconsumed candidates
//     back — so a slot costs O(1) round-trips per shard in the common
//     case. Departure pricing fans `price` RPCs to the owning shards in
//     parallel, one round-trip per shard per slot.
//
//   - Recovery: when any RPC fails (connection cut, torn frame,
//     restarted server), the coordinator redials and reseeds the shard
//     by streaming its current snapshot; the server rebuilds the
//     replica by deterministic replay, mid-slot included, and the
//     coordinator re-pulls that shard's unconsumed candidates. Winners
//     already recorded locally are never re-decided, and payments are
//     executed exactly once (locally, after the price fan-in), so a
//     shard lost mid-round cannot change the outcome. The chaos
//     recovery tests kill and restart servers mid-merge to pin this.
//
// docs/DISTRIBUTED.md spells out the topology, the exactness-over-RPC
// argument, and the single-host caveats; TestDistributedDifferentialSweep
// enforces bit-identical outcomes against core.OnlineAuction.
package dshard
