package dshard

import (
	"fmt"
	"net"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
)

// Cluster is a self-hosted distributed deployment for tests, sweeps,
// and crowdsim: S in-process shard Servers over in-memory listeners
// (chaos.MemListener) plus a Coordinator dialing them. The data path is
// the real one — every candidate, win, and payment crosses the
// length-prefixed wire — only the transport is a pipe instead of TCP.
type Cluster struct {
	Servers   []*Server
	Listeners []*chaos.MemListener
	Co        *Coordinator
}

// StartCluster boots S shard servers and a coordinator for one round.
// opts.Addrs and opts.Dial are overwritten to target the in-memory
// listeners; every other option is honored.
func StartCluster(shards int, opts Options) (*Cluster, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dshard: cluster needs at least 1 shard, got %d", shards)
	}
	cl := &Cluster{
		Servers:   make([]*Server, shards),
		Listeners: make([]*chaos.MemListener, shards),
	}
	for s := 0; s < shards; s++ {
		cl.Listeners[s] = chaos.NewMemListener(8)
		cl.Servers[s] = &Server{}
		go cl.Servers[s].Serve(cl.Listeners[s])
	}
	opts.Addrs = make([]string, shards)
	for s := range opts.Addrs {
		opts.Addrs[s] = fmt.Sprintf("mem://shard/%d", s)
	}
	listeners := cl.Listeners
	opts.Dial = func(addr string) (net.Conn, error) {
		for s, a := range opts.Addrs {
			if a == addr {
				return listeners[s].Dial()
			}
		}
		return nil, fmt.Errorf("dshard: unknown cluster address %s", addr)
	}
	co, err := New(opts)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.Co = co
	return cl, nil
}

// Close tears the whole cluster down: coordinator first, then servers.
func (cl *Cluster) Close() error {
	if cl.Co != nil {
		cl.Co.Close()
	}
	for _, srv := range cl.Servers {
		if srv != nil {
			srv.Close()
		}
	}
	return nil
}

// Mechanism adapts the distributed deployment to core.Mechanism so
// sweeps and differential tests can run batch instances through a real
// coordinator + shard-server cluster. Each Run boots a fresh Cluster
// (safe for concurrent use) and streams the instance slot by slot,
// mirroring shard.Mechanism's remapping.
type Mechanism struct {
	// Shards is the shard-server count (0 or negative: 1).
	Shards int
	// Wire names the frame format (empty: binary).
	Wire string
}

// Name implements Mechanism.
func (dm *Mechanism) Name() string {
	return fmt.Sprintf("dshard-greedy-s%d", dm.shards())
}

func (dm *Mechanism) shards() int {
	if dm.Shards < 1 {
		return 1
	}
	return dm.Shards
}

// Run implements Mechanism. For arrival-ordered instances (every
// workload generator's output) phone IDs survive streaming unchanged
// and the outcome is bit-identical to OnlineMechanism's; otherwise IDs
// are remapped through the delivery permutation.
func (dm *Mechanism) Run(in *core.Instance) (*core.Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("dshard mechanism: %w", err)
	}
	cl, err := StartCluster(dm.shards(), Options{
		Slots: in.Slots, Value: in.Value, AllocateAtLoss: in.AllocateAtLoss,
		Wire: dm.Wire,
	})
	if err != nil {
		return nil, fmt.Errorf("dshard mechanism: %w", err)
	}
	defer cl.Close()

	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	perSlot := in.TasksPerSlot()
	perm := make([]core.PhoneID, 0, len(in.Bids)) // stream ID -> instance ID
	arriving := make([]core.StreamBid, 0, 8)
	for t := core.Slot(1); t <= in.Slots; t++ {
		arriving = arriving[:0]
		for _, i := range byArrival[t] {
			arriving = append(arriving, core.StreamBid{Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost})
			perm = append(perm, core.PhoneID(i))
		}
		if _, err := cl.Co.Step(arriving, perSlot[t-1]); err != nil {
			return nil, fmt.Errorf("dshard mechanism: slot %d: %w", t, err)
		}
	}

	got := cl.Co.Outcome()
	out := &core.Outcome{
		Allocation: core.NewAllocation(in.NumTasks(), in.NumPhones()),
		Payments:   make([]float64, in.NumPhones()),
	}
	for k, ph := range got.Allocation.ByTask {
		if ph != core.NoPhone {
			out.Allocation.Assign(core.TaskID(k), perm[ph], got.Allocation.WonAt[ph])
		}
	}
	for j, amount := range got.Payments {
		out.Payments[perm[j]] = amount
	}
	out.Welfare = out.Allocation.Welfare(in)
	return out, nil
}

var _ core.Mechanism = (*Mechanism)(nil)
