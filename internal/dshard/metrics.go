package dshard

import (
	"strconv"

	"dynacrowd/internal/obs"
)

// Metrics is the distributed coordinator's observability bundle. All
// instruments are nil-safe; a nil *Metrics (or nil registry) disables
// instrumentation.
type Metrics struct {
	// RPCSeconds observes every coordinator RPC round-trip — pull,
	// top-up, price fan-out, and reseed — end to end including queueing
	// and the reply read (dynacrowd_dshard_rpc_seconds).
	RPCSeconds *obs.Histogram
	// Pulls[s], Topups[s], and Pushbacks[s] count merge traffic per
	// shard (dynacrowd_dshard_{pulls,topups,pushbacks}_total{shard}).
	Pulls     []*obs.Counter
	Topups    []*obs.Counter
	Pushbacks []*obs.Counter
	// Reseeds[s] counts snapshot reseeds of shard s — each one is a
	// shard server lost and recovered
	// (dynacrowd_dshard_reseeds_total{shard}).
	Reseeds []*obs.Counter
}

// NewMetrics registers the coordinator instruments for the given shard
// count. Registration is idempotent per (name, shard) pair; a nil
// registry returns a usable all-no-op bundle.
func NewMetrics(r *obs.Registry, shards int) *Metrics {
	m := &Metrics{
		RPCSeconds: r.Histogram("dynacrowd_dshard_rpc_seconds",
			"Coordinator-to-shard RPC round-trip latency in seconds.", obs.LatencyBuckets),
		Pulls:     make([]*obs.Counter, shards),
		Topups:    make([]*obs.Counter, shards),
		Pushbacks: make([]*obs.Counter, shards),
		Reseeds:   make([]*obs.Counter, shards),
	}
	for s := 0; s < shards; s++ {
		label := strconv.Itoa(s)
		m.Pulls[s] = r.Counter("dynacrowd_dshard_pulls_total",
			"Initial per-slot candidate pulls issued to each shard server.", "shard", label)
		m.Topups[s] = r.Counter("dynacrowd_dshard_topups_total",
			"Mid-merge top-up pulls issued to each shard server.", "shard", label)
		m.Pushbacks[s] = r.Counter("dynacrowd_dshard_pushbacks_total",
			"Unconsumed candidates pushed back to each shard server.", "shard", label)
		m.Reseeds[s] = r.Counter("dynacrowd_dshard_reseeds_total",
			"Snapshot reseeds of each shard server (lost-shard recoveries).", "shard", label)
	}
	return m
}
