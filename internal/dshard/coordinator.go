package dshard

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/protocol"
	"dynacrowd/internal/shard"
)

// fetchRetries bounds how many reseed-and-retry cycles one candidate
// fetch survives before the Step fails (each reseed already retries its
// own dial with backoff, so this guards pathological flapping only).
const fetchRetries = 3

// Options configures a Coordinator.
type Options struct {
	// Addrs lists one shard-server address per partition: partition s
	// of len(Addrs) lives at Addrs[s].
	Addrs []string
	// Slots, Value, and AllocateAtLoss mirror the engine constructors
	// (core.NewOnlineAuction, shard.New).
	Slots          core.Slot
	Value          float64
	AllocateAtLoss bool
	// Dial opens a connection to a shard server; nil uses plain TCP.
	Dial func(addr string) (net.Conn, error)
	// Wire names the negotiated frame format; empty means binary (the
	// distributed hot path is exactly what the binary framing is for).
	Wire string
	// Chunk overrides the speculative per-shard pull batch size; 0
	// derives it from the slot's task demand, like the in-process merge.
	Chunk int
	// Attempts and Backoff bound seed/reseed dial retries (a shard
	// server mid-restart needs a moment). Defaults: 10 and 15ms.
	Attempts int
	Backoff  time.Duration
}

func (o *Options) attempts() int {
	if o.Attempts > 0 {
		return o.Attempts
	}
	return 10
}

func (o *Options) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 15 * time.Millisecond
}

// Coordinator drives one online-auction round across shard-server
// processes. It implements core.Auction with outcomes bit-identical to
// core.OnlineAuction: the same k-way (cost, phone ID) merge the
// in-process sharded engine runs, performed over the wire.
//
// The coordinator applies every mutation to its local Replica before
// replicating it, so local state is authoritative at every instant and
// a shard server is disposable cache: any RPC failure is handled by
// redialing and streaming the local snapshot back (see shardClient.seed).
//
// Not safe for concurrent use; the platform serializes Steps.
type Coordinator struct {
	opts    Options
	local   *shard.Replica
	clients []*shardClient

	metrics *core.Metrics
	inst    *Metrics
	tracer  *obs.Tracer

	trackDepartures bool
	closed          bool

	// snapMu serializes snapshot extraction during reseeds — parallel
	// fan-out goroutines may reseed concurrently, and each reseed reads
	// the whole local replica.
	snapMu  sync.Mutex
	reseeds atomic.Uint64
	rpcs    atomic.Uint64 // RPC round-trips this slot (trace detail)

	// Merge scratch, reused across slots.
	pulled [][]core.PhoneID
	taken  []int
	heads  []int
}

// New builds a coordinator for one round and seeds every shard server
// with an empty replica. It fails if any shard cannot be seeded within
// the options' retry budget.
func New(opts Options) (*Coordinator, error) {
	local, err := shard.NewReplica(0, len(opts.Addrs), opts.Slots, opts.Value, opts.AllocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("dshard: %w", err)
	}
	return connect(local, opts)
}

// Restore rebuilds a coordinator from an engine-portable v1 snapshot
// (taken by Snapshot on any engine) and reseeds every shard server with
// it. opts.Slots/Value/AllocateAtLoss are taken from the snapshot.
func Restore(data []byte, opts Options) (*Coordinator, error) {
	local, err := shard.RestoreReplica(data, 0, len(opts.Addrs))
	if err != nil {
		return nil, fmt.Errorf("dshard: %w", err)
	}
	return connect(local, opts)
}

func connect(local *shard.Replica, opts Options) (*Coordinator, error) {
	if len(opts.Addrs) == 0 {
		return nil, fmt.Errorf("dshard: no shard addresses")
	}
	if opts.Wire == "" {
		opts.Wire = protocol.WireBinary
	}
	if _, err := protocol.FormatByName(opts.Wire); err != nil {
		return nil, fmt.Errorf("dshard: %w", err)
	}
	c := &Coordinator{
		opts:    opts,
		local:   local,
		clients: make([]*shardClient, len(opts.Addrs)),
		pulled:  make([][]core.PhoneID, len(opts.Addrs)),
		taken:   make([]int, len(opts.Addrs)),
	}
	for s, addr := range opts.Addrs {
		c.clients[s] = &shardClient{co: c, shard: s, addr: addr}
	}
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for s := range c.clients {
		wg.Add(1)
		go func(s int) { defer wg.Done(); errs[s] = c.clients[s].seedRetry() }(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close flushes and severs every shard connection. The coordinator's
// local state stays readable (Outcome, Snapshot) but Step fails.
func (c *Coordinator) Close() error {
	c.closed = true
	for _, sc := range c.clients {
		if sc != nil && sc.conn != nil {
			sc.flush()
			sc.close()
		}
	}
	return nil
}

func (c *Coordinator) dial(addr string) (net.Conn, error) {
	if c.opts.Dial != nil {
		return c.opts.Dial(addr)
	}
	return net.Dial("tcp", addr)
}

// reseed recovers shard s: counts the loss, then redials and restreams
// the local snapshot with retry/backoff.
func (c *Coordinator) reseed(sc *shardClient) error {
	if c.inst != nil {
		c.inst.Reseeds[sc.shard].Add(1)
	}
	c.reseeds.Add(1)
	return sc.seedRetry()
}

// Step advances the round one slot; semantics and outcomes match
// core.OnlineAuction.Step exactly. A returned error is fatal for the
// coordinator's connections but not its state: Snapshot still serializes
// the authoritative local replica, and Restore resumes from it.
func (c *Coordinator) Step(arriving []core.StreamBid, numTasks int) (*core.SlotResult, error) {
	if c.closed {
		return nil, fmt.Errorf("dshard: coordinator closed")
	}
	if c.Done() {
		return nil, fmt.Errorf("dshard: round already complete (%d slots)", c.local.Slots())
	}
	if numTasks < 0 {
		return nil, fmt.Errorf("dshard: negative task count %d", numTasks)
	}
	t := c.local.Now() + 1
	// Validate every probe before admitting any, so a bad batch leaves
	// the auction untouched (same atomicity as the sequential engine).
	for k, sb := range arriving {
		probe := core.Bid{Phone: core.PhoneID(c.local.NumPhones() + k), Arrival: t, Departure: sb.Departure, Cost: sb.Cost}
		if err := probe.Validate(c.local.Slots()); err != nil {
			return nil, fmt.Errorf("dshard: %w", err)
		}
	}
	if err := c.local.Advance(t); err != nil {
		return nil, err
	}
	res := &core.SlotResult{Slot: t}
	c.rpcs.Store(0)
	var start time.Time
	if c.metrics != nil || c.tracer != nil {
		start = time.Now()
	}

	// Admission: apply locally first, then replicate to every shard (all
	// replicas ledger every bid; the owner also pools it).
	for _, sb := range arriving {
		id := core.PhoneID(c.local.NumPhones())
		if err := c.local.Admit(id, t, sb.Departure, sb.Cost); err != nil {
			return nil, err // unreachable: probes validated above
		}
		res.Joined = append(res.Joined, id)
		for _, sc := range c.clients {
			sc.queue(&protocol.Message{
				Type:  protocol.TypeShardAdmit,
				Phone: id, Slot: t, Departure: sb.Departure, Cost: sb.Cost,
			})
		}
	}

	if err := c.allocate(t, numTasks, res); err != nil {
		return nil, err
	}

	if c.metrics != nil {
		c.metrics.SlotAllocSeconds.Observe(time.Since(start).Seconds())
	}
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{
			Time: time.Now(), Type: obs.EventShardRPC, Slot: int(t),
			Phone: -1, Task: -1,
			Detail: fmt.Sprintf("shards=%d tasks=%d rpcs=%d reseeds=%d",
				len(c.clients), numTasks, c.rpcs.Load(), c.reseeds.Load()),
		})
	}
	if c.metrics != nil {
		start = time.Now()
	}

	if err := c.settle(t, res); err != nil {
		return nil, err
	}

	if c.metrics != nil {
		c.metrics.PaymentSeconds.Observe(time.Since(start).Seconds())
	}
	// Drain queued replication; a failed flush marks the client broken
	// and the next request reseeds it.
	for _, sc := range c.clients {
		sc.flush()
	}
	return res, nil
}

// fetch pulls (or tops up) count candidates from shard s into
// c.pulled[s], reseeding and retrying on any transport failure. After a
// reseed the restored remote pool re-contains every candidate this
// shard popped that the coordinator has not recorded as a win, so the
// unconsumed local copy is discarded and pulled fresh; exclude names
// the one popped phone the coordinator holds consumed-but-unrecorded
// (the in-flight winner whose top-up this is), which a post-reseed
// re-pull would otherwise hand back a second time.
func (c *Coordinator) fetch(s int, typ string, t core.Slot, count int, exclude core.PhoneID) error {
	sc := c.clients[s]
	if c.inst != nil {
		if typ == protocol.TypePull {
			c.inst.Pulls[s].Add(1)
		} else {
			c.inst.Topups[s].Add(1)
		}
	}
	var err error
	for attempt := 0; attempt < fetchRetries; attempt++ {
		if attempt > 0 || sc.broken {
			if err2 := c.reseed(sc); err2 != nil {
				return err2
			}
			c.pulled[s] = c.pulled[s][:c.taken[s]]
		}
		// A post-reseed pool re-contains the in-flight winner, and it is
		// that pool's cheapest entry — a re-pull of exactly count would
		// spend one slot of its budget on a candidate the filter below
		// discards, under-filling the batch (fatal when count is 1: the
		// shard would be dropped as dry with candidates still pooled).
		// One extra is always outcome-neutral: extras push back.
		req := count
		if exclude != core.NoPhone {
			req++
		}
		base := len(c.pulled[s])
		rpcStart := time.Now()
		var buf []core.PhoneID
		buf, err = sc.pull(typ, t, req, c.pulled[s])
		if c.inst != nil {
			c.inst.RPCSeconds.Observe(time.Since(rpcStart).Seconds())
		}
		c.rpcs.Add(1)
		if err != nil {
			continue
		}
		out := buf[:base]
		for _, ph := range buf[base:] {
			if ph != exclude {
				out = append(out, ph)
			}
		}
		c.pulled[s] = out
		return nil
	}
	return fmt.Errorf("dshard: shard %d fetch: %w", s, err)
}

// allocate announces numTasks tasks in slot t and assigns each to the
// globally cheapest eligible phone: speculative parallel pulls, then
// the sequential engine's exact merge over the pulled buffers, topping
// a shard up (batch = remaining demand, so a lopsided shard costs O(1)
// extra round-trips, not O(r_t)) only when its winners outrun its pull.
func (c *Coordinator) allocate(t core.Slot, numTasks int, res *core.SlotResult) error {
	if numTasks == 0 {
		return nil
	}
	// Pre-pull: the merge needs at most numTasks winners plus one
	// runner-up in total, so an even split plus one covers the common
	// case. Chunk size affects round-trips only, never the outcome —
	// extras push back at slot end.
	chunk := c.opts.Chunk
	if chunk <= 0 {
		chunk = (numTasks+1)/len(c.clients) + 1
	}
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for s := range c.clients {
		c.pulled[s] = c.pulled[s][:0]
		c.taken[s] = 0
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = c.fetch(s, protocol.TypePull, t, chunk, core.NoPhone)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merge heap over the shards' head candidates, ordered by the same
	// (cost, phone ID) key every pool heap uses.
	c.heads = c.heads[:0]
	for s := range c.clients {
		if len(c.pulled[s]) > 0 {
			c.headsPush(s)
		}
	}
	for k := 0; k < numTasks; k++ {
		if len(c.heads) == 0 {
			rem := numTasks - k
			if err := c.local.Unserved(t, rem); err != nil {
				return err
			}
			res.Unserved = rem
			for _, sc := range c.clients {
				sc.queue(&protocol.Message{Type: protocol.TypeShardUnserved, Slot: t, Count: rem})
			}
			break
		}
		s := c.heads[0]
		winner := c.pulled[s][c.taken[s]]
		c.taken[s]++
		// Remaining demand past this win: numTasks-k-1 winners plus one
		// runner-up.
		if err := c.advanceHead(t, numTasks-k, winner); err != nil {
			return err
		}
		runner := core.NoPhone
		if len(c.heads) > 0 {
			top := c.heads[0]
			runner = c.pulled[top][c.taken[top]]
		}
		task, err := c.local.Win(winner, runner, t)
		if err != nil {
			return err
		}
		for _, sc := range c.clients {
			sc.queue(&protocol.Message{
				Type: protocol.TypeShardWin,
				Task: task, Phone: winner, Runner: runner, Slot: t,
			})
		}
		res.Assignments = append(res.Assignments, core.Assignment{Task: task, Phone: winner, Slot: t})
	}

	// Unconsumed candidates (including the surviving runner-up) return
	// to their owning pools. The coordinator's local pools never popped
	// them — only remote pools did — so push-back is remote-only.
	for s, sc := range c.clients {
		rest := c.pulled[s][c.taken[s]:]
		for _, ph := range rest {
			sc.queue(&protocol.Message{Type: protocol.TypePushback, Phone: ph})
		}
		if c.inst != nil && len(rest) > 0 {
			c.inst.Pushbacks[s].Add(uint64(len(rest)))
		}
	}
	return nil
}

// headLess orders shards by their current head candidate.
func (c *Coordinator) headLess(sa, sb int) bool {
	pa := c.pulled[sa][c.taken[sa]]
	pb := c.pulled[sb][c.taken[sb]]
	ca, cb := c.local.Bid(pa).Cost, c.local.Bid(pb).Cost
	if ca != cb {
		return ca < cb
	}
	return pa < pb
}

func (c *Coordinator) headsPush(s int) {
	c.heads = append(c.heads, s)
	i := len(c.heads) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.headLess(c.heads[i], c.heads[parent]) {
			break
		}
		c.heads[i], c.heads[parent] = c.heads[parent], c.heads[i]
		i = parent
	}
}

// advanceHead moves the top shard past its consumed head, topping it up
// over the wire (batch = remaining demand) when its buffer is
// exhausted, dropping it when the shard is dry, and restoring the heap.
func (c *Coordinator) advanceHead(t core.Slot, demand int, consumed core.PhoneID) error {
	s := c.heads[0]
	if c.taken[s] >= len(c.pulled[s]) {
		if err := c.fetch(s, protocol.TypeTopup, t, demand, consumed); err != nil {
			return err
		}
		if c.taken[s] >= len(c.pulled[s]) {
			last := len(c.heads) - 1
			c.heads[0] = c.heads[last]
			c.heads = c.heads[:last]
		}
	}
	c.headsFix()
	return nil
}

// headsFix sifts heads[0] down after its key changed or was replaced.
func (c *Coordinator) headsFix() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(c.heads) && c.headLess(c.heads[l], c.heads[small]) {
			small = l
		}
		if r < len(c.heads) && c.headLess(c.heads[r], c.heads[small]) {
			small = r
		}
		if small == i {
			return
		}
		c.heads[i], c.heads[small] = c.heads[small], c.heads[i]
		i = small
	}
}

// settle finalizes payments for winners whose reported departure is
// slot t: the price fan-out runs one batched RPC per owning shard in
// parallel (pricing is read-only on the replicas), then payments apply
// locally and replicate in ascending phone ID — the sequential engine's
// payout order.
func (c *Coordinator) settle(t core.Slot, res *core.SlotResult) error {
	deps := c.local.Departing(t)
	if c.trackDepartures && len(deps) > 0 {
		res.Departed = append(res.Departed, deps...)
	}
	perShard := make([][]core.PhoneID, len(c.clients))
	payable := 0
	for _, ph := range deps {
		if c.local.WonAt(ph) == 0 || !c.local.Payable(ph) {
			continue
		}
		s := shard.ShardOf(ph, len(c.clients))
		perShard[s] = append(perShard[s], ph)
		payable++
	}
	if payable == 0 {
		return nil
	}

	amounts := make([]map[core.PhoneID]float64, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for s := range c.clients {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			amounts[s], errs[s] = c.priceShard(s, perShard[s])
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	for _, ph := range deps {
		if c.local.WonAt(ph) == 0 || !c.local.Payable(ph) {
			continue
		}
		amount := amounts[shard.ShardOf(ph, len(c.clients))][ph]
		if err := c.local.Paid(ph, amount, t); err != nil {
			return err
		}
		for _, sc := range c.clients {
			sc.queue(&protocol.Message{Type: protocol.TypeShardPaid, Phone: ph, Amount: amount, Slot: t})
		}
		res.Payments = append(res.Payments, core.PaymentNotice{Phone: ph, Amount: amount})
	}
	return nil
}

// priceShard asks shard s to price its departing winners, one batched
// round-trip, reseeding and retrying on failure (pricing is read-only,
// so a retry after reseed is trivially safe).
func (c *Coordinator) priceShard(s int, phones []core.PhoneID) (map[core.PhoneID]float64, error) {
	sc := c.clients[s]
	var err error
	for attempt := 0; attempt < fetchRetries; attempt++ {
		if attempt > 0 || sc.broken {
			if err2 := c.reseed(sc); err2 != nil {
				return nil, err2
			}
		}
		rpcStart := time.Now()
		var out map[core.PhoneID]float64
		out, err = sc.prices(phones)
		if c.inst != nil {
			c.inst.RPCSeconds.Observe(time.Since(rpcStart).Seconds())
		}
		c.rpcs.Add(1)
		if err == nil {
			return out, nil
		}
	}
	return nil, fmt.Errorf("dshard: shard %d price fan-out: %w", s, err)
}

// Now returns the last processed slot; Done whether the round is over.
func (c *Coordinator) Now() core.Slot { return c.local.Now() }
func (c *Coordinator) Done() bool     { return c.local.Now() >= c.local.Slots() }

// Shards returns the number of shard servers the coordinator drives.
func (c *Coordinator) Shards() int { return len(c.clients) }

// Outcome assembles the round outcome so far from the authoritative
// local replica; Instance returns the accumulated bids and tasks.
func (c *Coordinator) Outcome() *core.Outcome   { return c.local.Outcome() }
func (c *Coordinator) Instance() *core.Instance { return c.local.Instance() }

// Snapshot serializes the authoritative local state in the
// engine-portable v1 format — the same stream that reseeds shards.
func (c *Coordinator) Snapshot() ([]byte, error) { return c.local.Snapshot() }

// SetPaymentEngine selects the engine used for outcome assembly and
// default re-allocation (nil: cascade). Departure pricing on the shard
// servers always runs the cascade engine; every engine prices
// identically by the differential contract, so outcomes are unchanged.
func (c *Coordinator) SetPaymentEngine(e core.PaymentEngine) { c.local.SetEngine(e) }

// SetMetrics instruments the hot path (nil disables).
func (c *Coordinator) SetMetrics(m *core.Metrics) { c.metrics = m }

// SetInstruments attaches the distributed observability bundle; a
// shape mismatch drops it rather than mis-attributing series.
func (c *Coordinator) SetInstruments(m *Metrics) {
	if m != nil && len(m.Pulls) != len(c.clients) {
		m = nil
	}
	c.inst = m
}

// SetTracer attaches a structured event tracer (shard_rpc events).
func (c *Coordinator) SetTracer(tr *obs.Tracer) { c.tracer = tr }

// TrackDepartures toggles SlotResult.Departed population.
func (c *Coordinator) TrackDepartures(on bool) { c.trackDepartures = on }

// TrackCompletions toggles the assignment lifecycle, locally and on
// every replica.
func (c *Coordinator) TrackCompletions(on bool) {
	c.local.Track(on)
	count := 0
	if on {
		count = 1
	}
	for _, sc := range c.clients {
		sc.queue(&protocol.Message{Type: protocol.TypeShardTrack, Count: count})
		sc.flush()
	}
}

// Complete marks phone p's assignment delivered, locally first, then on
// every replica.
func (c *Coordinator) Complete(p core.PhoneID) error {
	if err := c.local.Complete(p); err != nil {
		return err
	}
	for _, sc := range c.clients {
		sc.queue(&protocol.Message{Type: protocol.TypeShardComplete, Phone: p})
		sc.flush()
	}
	return nil
}

// Default marks phone p's assignment failed at the current slot,
// re-allocating its task (see core.Ledger.DefaultWinner), locally
// first, then on every replica (the re-allocation is deterministic from
// ledger state, so replicas converge).
func (c *Coordinator) Default(p core.PhoneID) (*core.DefaultResult, error) {
	now := c.local.Now()
	dr, err := c.local.Default(p, now)
	if err != nil {
		return nil, err
	}
	for _, sc := range c.clients {
		sc.queue(&protocol.Message{Type: protocol.TypeShardDefault, Phone: p, Slot: now})
		sc.flush()
	}
	return dr, nil
}

// Completion returns phone p's lifecycle view; CompletionCounts the
// aggregate outcomes.
func (c *Coordinator) Completion(p core.PhoneID) core.CompletionState { return c.local.Completion(p) }
func (c *Coordinator) CompletionCounts() core.CompletionCounts        { return c.local.CompletionCounts() }

var _ core.Auction = (*Coordinator)(nil)
