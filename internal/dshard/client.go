package dshard

import (
	"encoding/base64"
	"fmt"
	"net"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// snapshotChunkRaw is the raw byte size of one shard-snapshot chunk;
// base64 expands it 4/3, comfortably inside protocol.MaxSnapshotChunk
// and the frame bound.
const snapshotChunkRaw = 32 * 1024

// shardClient is the coordinator's connection to one shard server. It
// is used by one goroutine at a time (the coordinator serializes per
// shard; the parallel fan-outs give each shard its own goroutine).
type shardClient struct {
	co    *Coordinator
	shard int
	addr  string

	conn   net.Conn
	r      *protocol.Reader
	w      *protocol.Writer
	seq    uint64 // messages sent since the last seed
	broken bool   // a queued write failed; reseed before the next request
}

// queue stages a fire-and-forget replication message. Errors don't
// surface here — the apply-locally-first invariant makes every queued
// mutation recoverable from the coordinator snapshot, so a failed
// write just marks the client broken and the next request reseeds.
func (sc *shardClient) queue(m *protocol.Message) {
	if sc.broken {
		return
	}
	m.Seq = 0 // fire-and-forget carries no seq
	if err := sc.w.Queue(m); err != nil {
		sc.broken = true
		return
	}
	sc.seq++
}

// flush pushes queued messages to the wire.
func (sc *shardClient) flush() {
	if sc.broken {
		return
	}
	if err := sc.w.Flush(); err != nil {
		sc.broken = true
	}
}

// request sends m (stamped with the client's seq), flushes, and reads
// one reply, verifying the echoed seq when the reply carries one. A
// nil reply error with reply.Type == error is surfaced as an error.
func (sc *shardClient) request(m *protocol.Message, reply *protocol.Message) error {
	if sc.broken {
		return fmt.Errorf("dshard: shard %d connection marked broken", sc.shard)
	}
	m.Seq = sc.seq
	if err := sc.w.Queue(m); err != nil {
		sc.broken = true
		return err
	}
	sc.seq++
	if err := sc.w.Flush(); err != nil {
		sc.broken = true
		return err
	}
	if err := sc.r.ReceiveInto(reply); err != nil {
		sc.broken = true
		return err
	}
	if reply.Type == protocol.TypeError {
		sc.broken = true
		return fmt.Errorf("dshard: shard %d: %s", sc.shard, reply.Error)
	}
	return nil
}

// receive reads one more message of a multi-frame reply.
func (sc *shardClient) receive(reply *protocol.Message) error {
	if err := sc.r.ReceiveInto(reply); err != nil {
		sc.broken = true
		return err
	}
	if reply.Type == protocol.TypeError {
		sc.broken = true
		return fmt.Errorf("dshard: shard %d: %s", sc.shard, reply.Error)
	}
	return nil
}

// seed (re)establishes the connection and pushes the coordinator's
// current snapshot: dial, wire negotiation, shard-join, snapshot
// stream, ack. On success the client is fresh — seq 0, not broken.
func (sc *shardClient) seed() error {
	if sc.conn != nil {
		sc.conn.Close()
		sc.conn = nil
	}
	// Parallel fan-out goroutines may reseed concurrently; snapshot
	// extraction reads the whole local replica, so serialize it.
	sc.co.snapMu.Lock()
	snap, err := sc.co.local.Snapshot()
	sc.co.snapMu.Unlock()
	if err != nil {
		return fmt.Errorf("dshard: snapshot for shard %d seed: %w", sc.shard, err)
	}
	conn, err := sc.co.dial(sc.addr)
	if err != nil {
		return fmt.Errorf("dshard: dial shard %d (%s): %w", sc.shard, sc.addr, err)
	}
	r, w := protocol.NewReader(conn), protocol.NewWriter(conn)

	format, err := protocol.FormatByName(sc.co.opts.Wire)
	if err != nil {
		conn.Close()
		return err
	}
	var reply protocol.Message
	if err := w.Send(&protocol.Message{Type: protocol.TypeHello, Wire: sc.co.opts.Wire}); err != nil {
		conn.Close()
		return fmt.Errorf("dshard: shard %d hello: %w", sc.shard, err)
	}
	if err := r.ReceiveInto(&reply); err != nil {
		conn.Close()
		return fmt.Errorf("dshard: shard %d state: %w", sc.shard, err)
	}
	if reply.Type != protocol.TypeState {
		conn.Close()
		return fmt.Errorf("dshard: shard %d: want state reply, got %s", sc.shard, reply.Type)
	}
	w.SetFormat(format)
	r.SetFormat(format)

	if err := w.Queue(&protocol.Message{
		Type: protocol.TypeShardJoin, Shard: sc.shard, Shards: len(sc.co.clients),
	}); err != nil {
		conn.Close()
		return fmt.Errorf("dshard: shard %d join: %w", sc.shard, err)
	}
	for off := 0; ; off += snapshotChunkRaw {
		end := off + snapshotChunkRaw
		if end > len(snap) {
			end = len(snap)
		}
		remaining := 0
		if end < len(snap) {
			remaining = (len(snap) - end + snapshotChunkRaw - 1) / snapshotChunkRaw
		}
		if err := w.Queue(&protocol.Message{
			Type:  protocol.TypeShardSnapshot,
			Count: remaining,
			Data:  base64.StdEncoding.EncodeToString(snap[off:end]),
		}); err != nil {
			conn.Close()
			return fmt.Errorf("dshard: shard %d snapshot chunk: %w", sc.shard, err)
		}
		if end == len(snap) {
			break
		}
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return fmt.Errorf("dshard: shard %d seed flush: %w", sc.shard, err)
	}
	if err := r.ReceiveInto(&reply); err != nil {
		conn.Close()
		return fmt.Errorf("dshard: shard %d seed ack: %w", sc.shard, err)
	}
	if reply.Type != protocol.TypeAck {
		conn.Close()
		if reply.Type == protocol.TypeError {
			return fmt.Errorf("dshard: shard %d seed rejected: %s", sc.shard, reply.Error)
		}
		return fmt.Errorf("dshard: shard %d: want seed ack, got %s", sc.shard, reply.Type)
	}

	sc.conn, sc.r, sc.w = conn, r, w
	sc.seq = 0
	sc.broken = false
	return nil
}

// seedRetry retries seed with exponential backoff — a shard server
// mid-restart needs a moment to start listening again. The attempt
// budget and base backoff come from Options.
func (sc *shardClient) seedRetry() error {
	var err error
	backoff := sc.co.opts.backoff()
	for attempt := 0; attempt < sc.co.opts.attempts(); attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
		}
		if err = sc.seed(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("dshard: seed shard %d: %w", sc.shard, err)
}

// close severs the connection.
func (sc *shardClient) close() {
	if sc.conn != nil {
		sc.conn.Close()
		sc.conn = nil
	}
	sc.broken = true
}

// pull issues a pull or top-up request for slot t and returns the
// candidates. The caller handles reseed-on-error.
func (sc *shardClient) pull(typ string, t core.Slot, count int, buf []core.PhoneID) ([]core.PhoneID, error) {
	var reply protocol.Message
	if err := sc.request(&protocol.Message{Type: typ, Slot: t, Count: count}, &reply); err != nil {
		return buf, err
	}
	if reply.Type != protocol.TypeCands || reply.Slot != t {
		sc.broken = true
		return buf, fmt.Errorf("dshard: shard %d: want cands for slot %d, got %s slot %d",
			sc.shard, t, reply.Type, reply.Slot)
	}
	if reply.Seq != sc.seq {
		sc.broken = true
		return buf, fmt.Errorf("dshard: shard %d seq %d, want %d — divergence", sc.shard, reply.Seq, sc.seq)
	}
	for i := 0; i < reply.Count; i++ {
		var cand protocol.Message
		if err := sc.receive(&cand); err != nil {
			return buf, err
		}
		if cand.Type != protocol.TypeCand {
			sc.broken = true
			return buf, fmt.Errorf("dshard: shard %d: want cand, got %s", sc.shard, cand.Type)
		}
		buf = append(buf, cand.Phone)
	}
	return buf, nil
}

// prices asks the shard for its departing winners' critical-value
// payments in one batched round-trip. The server replies to each
// request as it reads it, so over an unbuffered transport the request
// batch must be written concurrently with the reply reads — flushing it
// all before reading would deadlock both sides against full pipes.
func (sc *shardClient) prices(phones []core.PhoneID) (map[core.PhoneID]float64, error) {
	if sc.broken {
		return nil, fmt.Errorf("dshard: shard %d connection marked broken", sc.shard)
	}
	seqs := make([]uint64, len(phones))
	for i := range phones {
		seqs[i] = sc.seq
		sc.seq++
	}
	w := sc.w // the writer goroutine touches only this capture, so a
	// concurrent reseed (which replaces sc.w) cannot race it
	writeErr := make(chan error, 1)
	go func() {
		for i, p := range phones {
			if err := w.Queue(&protocol.Message{Type: protocol.TypePrice, Phone: p, Seq: seqs[i]}); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- w.Flush()
	}()

	out := make(map[core.PhoneID]float64, len(phones))
	for _, p := range phones {
		var reply protocol.Message
		if err := sc.receive(&reply); err != nil {
			// The writer goroutine exits when the dead connection fails
			// its writes (the caller's reseed closes it).
			return nil, err
		}
		// The payment reply's binary layout carries no seq; the echoed
		// phone is the integrity check on this path.
		if reply.Type != protocol.TypePayment || reply.Phone != p {
			sc.broken = true
			return nil, fmt.Errorf("dshard: shard %d: want payment for phone %d, got %s phone %d",
				sc.shard, p, reply.Type, reply.Phone)
		}
		out[p] = reply.Amount
	}
	if err := <-writeErr; err != nil {
		sc.broken = true
		return nil, err
	}
	return out, nil
}
