package dshard_test

import (
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/dshard"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/workload"
)

// testCluster hosts S shard servers over in-memory listeners with an
// optional chaos plan battering every coordinator-dialed connection,
// plus kill/restart hooks for the recovery tests.
type testCluster struct {
	t    *testing.T
	co   *dshard.Coordinator
	plan *chaos.Plan

	mu        sync.Mutex
	listeners []*chaos.MemListener
	servers   []*dshard.Server
	dials     atomic.Int64
}

func startCluster(t *testing.T, shards int, slots core.Slot, value float64, atLoss bool, plan *chaos.Plan, wire string) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:         t,
		plan:      plan,
		listeners: make([]*chaos.MemListener, shards),
		servers:   make([]*dshard.Server, shards),
	}
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		tc.bootServer(s)
		addrs[s] = "shard-" + strconv.Itoa(s)
	}
	co, err := dshard.New(dshard.Options{
		Addrs: addrs, Slots: slots, Value: value, AllocateAtLoss: atLoss,
		Dial: tc.dial, Wire: wire, Backoff: time.Millisecond,
	})
	if err != nil {
		tc.Close()
		t.Fatalf("start cluster: %v", err)
	}
	tc.co = co
	t.Cleanup(func() { tc.Close() })
	return tc
}

func (tc *testCluster) bootServer(s int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.listeners[s] = chaos.NewMemListener(8)
	tc.servers[s] = &dshard.Server{}
	go tc.servers[s].Serve(tc.listeners[s])
}

func (tc *testCluster) dial(addr string) (net.Conn, error) {
	s, err := strconv.Atoi(strings.TrimPrefix(addr, "shard-"))
	if err != nil {
		return nil, fmt.Errorf("bad test address %q", addr)
	}
	tc.mu.Lock()
	ln := tc.listeners[s]
	tc.mu.Unlock()
	c, err := ln.Dial()
	if err != nil {
		return nil, err
	}
	if tc.plan != nil {
		return chaos.WrapConn(c, *tc.plan, tc.dials.Add(1)), nil
	}
	return c, nil
}

// killShard severs shard s — listener and every live session die, like
// a shard-server process crash.
func (tc *testCluster) killShard(s int) {
	tc.mu.Lock()
	srv := tc.servers[s]
	tc.mu.Unlock()
	srv.Close()
}

// restartShard boots a fresh, empty server at shard s's address.
func (tc *testCluster) restartShard(s int) { tc.bootServer(s) }

func (tc *testCluster) Close() {
	if tc.co != nil {
		tc.co.Close()
	}
	tc.mu.Lock()
	servers := append([]*dshard.Server(nil), tc.servers...)
	tc.mu.Unlock()
	for _, srv := range servers {
		if srv != nil {
			srv.Close()
		}
	}
}

// sweepPlan is the fault schedule for the differential sweep: latency
// jitter, chunked writes, torn frames, and clean mid-stream hangups on
// every coordinator connection, armed after the handshake so the very
// first seed usually lands.
func sweepPlan(seed int64) *chaos.Plan {
	return &chaos.Plan{
		Seed:           seed,
		LatencyProb:    0.02,
		MaxLatency:     200 * time.Microsecond,
		ChunkBytes:     61,
		TruncateProb:   0.004,
		DisconnectProb: 0.008,
		ArmAfterBytes:  2048,
	}
}

func streamPlan(in *core.Instance) ([][]core.StreamBid, []int) {
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], core.StreamBid{Departure: b.Departure, Cost: b.Cost})
	}
	return byArrival, in.TasksPerSlot()
}

func genInstance(t testing.TB, seed uint64) *core.Instance {
	t.Helper()
	scn := workload.DefaultScenario()
	scn.Slots = 30
	in, err := scn.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func sameNotices(a, b []core.PaymentNotice) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phone != b[i].Phone || math.Float64bits(a[i].Amount) != math.Float64bits(b[i].Amount) {
			return false
		}
	}
	return true
}

func sameSlot(t *testing.T, label string, want, got *core.SlotResult) {
	t.Helper()
	if len(want.Joined) != len(got.Joined) || want.Unserved != got.Unserved {
		t.Fatalf("%s: joined/unserved mismatch: %+v vs %+v", label, got, want)
	}
	if len(want.Assignments) != len(got.Assignments) {
		t.Fatalf("%s: %d assignments != %d", label, len(got.Assignments), len(want.Assignments))
	}
	for k := range want.Assignments {
		if want.Assignments[k] != got.Assignments[k] {
			t.Fatalf("%s: assignment %d: %+v != %+v", label, k, got.Assignments[k], want.Assignments[k])
		}
	}
	if !sameNotices(want.Payments, got.Payments) {
		t.Fatalf("%s: payments %+v != %+v", label, got.Payments, want.Payments)
	}
	if len(want.Departed) != len(got.Departed) {
		t.Fatalf("%s: departed %v != %v", label, got.Departed, want.Departed)
	}
	for k := range want.Departed {
		if want.Departed[k] != got.Departed[k] {
			t.Fatalf("%s: departed %v != %v", label, got.Departed, want.Departed)
		}
	}
}

func sameOutcome(t *testing.T, label string, want, got *core.Outcome) {
	t.Helper()
	if len(want.Allocation.ByTask) != len(got.Allocation.ByTask) {
		t.Fatalf("%s: task count %d != %d", label, len(got.Allocation.ByTask), len(want.Allocation.ByTask))
	}
	for k := range want.Allocation.ByTask {
		if want.Allocation.ByTask[k] != got.Allocation.ByTask[k] {
			t.Fatalf("%s: task %d winner %d != %d", label, k, got.Allocation.ByTask[k], want.Allocation.ByTask[k])
		}
	}
	for i := range want.Allocation.WonAt {
		if want.Allocation.WonAt[i] != got.Allocation.WonAt[i] {
			t.Fatalf("%s: phone %d winning slot %d != %d", label, i, got.Allocation.WonAt[i], want.Allocation.WonAt[i])
		}
	}
	if len(want.Payments) != len(got.Payments) {
		t.Fatalf("%s: payment vector %d != %d", label, len(got.Payments), len(want.Payments))
	}
	for i := range want.Payments {
		if math.Float64bits(want.Payments[i]) != math.Float64bits(got.Payments[i]) {
			t.Fatalf("%s: phone %d payment %v != %v (bitwise)", label, i, got.Payments[i], want.Payments[i])
		}
	}
	if math.Float64bits(want.Welfare) != math.Float64bits(got.Welfare) {
		t.Fatalf("%s: welfare %v != %v (bitwise)", label, got.Welfare, want.Welfare)
	}
}

// TestDistributedStepParity drives a coordinator+shards cluster and the
// sequential engine through identical streams on a clean transport and
// requires every per-slot result — assignments, unserved counts,
// departures, payment notices (bitwise floats) — to match.
func TestDistributedStepParity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			in := genInstance(t, seed)
			byArrival, perSlot := streamPlan(in)

			seq, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
			if err != nil {
				t.Fatal(err)
			}
			seq.TrackDepartures(true)
			tc := startCluster(t, shards, in.Slots, in.Value, in.AllocateAtLoss, nil, "")
			tc.co.TrackDepartures(true)

			label := fmt.Sprintf("s=%d seed=%d", shards, seed)
			for s := core.Slot(1); s <= in.Slots; s++ {
				want, err := seq.Step(byArrival[s], perSlot[s-1])
				if err != nil {
					t.Fatal(err)
				}
				got, err := tc.co.Step(byArrival[s], perSlot[s-1])
				if err != nil {
					t.Fatal(err)
				}
				sameSlot(t, fmt.Sprintf("%s slot %d", label, s), want, got)
			}
			sameOutcome(t, label, seq.Outcome(), tc.co.Outcome())
			tc.Close()
		}
	}
}

// TestDistributedDifferentialSweep is the distributed exactness
// contract: across ≥208 seeded rounds (52 seeds × shard counts 1, 2, 4,
// 8) a coordinator + S shard-server cluster over chaos-battered
// in-memory connections — latency jitter, segmented writes, torn
// frames, mid-stream disconnects forcing snapshot reseeds — produces
// allocations, payment vectors, and welfare bit-identical to
// core.OnlineAuction. The completions subtest repeats the check with
// the PR 6 realization scripts deciding, slot by slot, which winners
// deliver and which default.
func TestDistributedDifferentialSweep(t *testing.T) {
	t.Run("outcomes", func(t *testing.T) {
		const seeds = 52
		rounds := 0
		for _, shards := range []int{1, 2, 4, 8} {
			for seed := uint64(1); seed <= seeds; seed++ {
				in := genInstance(t, seed)
				byArrival, perSlot := streamPlan(in)

				seq, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
				if err != nil {
					t.Fatal(err)
				}
				plan := sweepPlan(int64(seed)*100 + int64(shards))
				tc := startCluster(t, shards, in.Slots, in.Value, in.AllocateAtLoss, plan, "")

				label := fmt.Sprintf("s=%d seed=%d", shards, seed)
				for s := core.Slot(1); s <= in.Slots; s++ {
					want, err := seq.Step(byArrival[s], perSlot[s-1])
					if err != nil {
						t.Fatal(err)
					}
					got, err := tc.co.Step(byArrival[s], perSlot[s-1])
					if err != nil {
						t.Fatalf("%s slot %d: %v", label, s, err)
					}
					sameSlot(t, fmt.Sprintf("%s slot %d", label, s), want, got)
				}
				sameOutcome(t, label, seq.Outcome(), tc.co.Outcome())
				tc.Close()
				rounds++
			}
		}
		if rounds < 200 {
			t.Fatalf("differential sweep covered %d rounds, want >= 200", rounds)
		}
	})

	t.Run("completions", func(t *testing.T) {
		for _, seed := range []uint64{1, 7, 42} {
			in := genInstance(t, seed)
			rel, err := workload.ChaosModel().Realize(in, seed+100)
			if err != nil {
				t.Fatal(err)
			}
			byArrival, perSlot := streamPlan(in)

			for _, shards := range []int{1, 2, 4, 8} {
				ref, err := core.NewOnlineAuction(in.Slots, in.Value, false)
				if err != nil {
					t.Fatal(err)
				}
				ref.TrackCompletions(true)
				plan := sweepPlan(int64(seed)*1000 + int64(shards))
				tc := startCluster(t, shards, in.Slots, in.Value, false, plan, "")
				tc.co.TrackCompletions(true)

				label := fmt.Sprintf("completions s=%d seed=%d", shards, seed)
				for s := core.Slot(1); s <= in.Slots; s++ {
					want, err := ref.Step(byArrival[s], perSlot[s-1])
					if err != nil {
						t.Fatal(err)
					}
					got, err := tc.co.Step(byArrival[s], perSlot[s-1])
					if err != nil {
						t.Fatalf("%s slot %d: %v", label, s, err)
					}
					// Resolve mutates the slot result (appends replacement
					// payments), so run it on both before comparing.
					wc, wd, err := rel.Resolve(ref, want)
					if err != nil {
						t.Fatal(err)
					}
					gc, gd, err := rel.Resolve(tc.co, got)
					if err != nil {
						t.Fatal(err)
					}
					if wc != gc || wd != gd {
						t.Fatalf("%s slot %d: resolved (%d,%d) != (%d,%d)", label, s, gc, gd, wc, wd)
					}
					sameSlot(t, fmt.Sprintf("%s slot %d", label, s), want, got)
				}
				sameOutcome(t, label, ref.Outcome(), tc.co.Outcome())
				if a, b := ref.CompletionCounts(), tc.co.CompletionCounts(); a != b {
					t.Fatalf("%s: counts %+v != %+v", label, b, a)
				}
				for i := 0; i < len(in.Bids); i++ {
					if a, b := ref.Completion(core.PhoneID(i)), tc.co.Completion(core.PhoneID(i)); a != b {
						t.Fatalf("%s: phone %d state %+v != %+v", label, i, b, a)
					}
				}
				tc.Close()
			}
		}
	})
}

// TestDistributedWireJSON repeats a parity round over the JSON frame
// fallback, pinning that both negotiated formats drive the same
// replicated-operation semantics.
func TestDistributedWireJSON(t *testing.T) {
	in := genInstance(t, 11)
	byArrival, perSlot := streamPlan(in)
	seq, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 4, in.Slots, in.Value, in.AllocateAtLoss, sweepPlan(77), "json")
	for s := core.Slot(1); s <= in.Slots; s++ {
		want, err := seq.Step(byArrival[s], perSlot[s-1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.co.Step(byArrival[s], perSlot[s-1])
		if err != nil {
			t.Fatal(err)
		}
		sameSlot(t, fmt.Sprintf("json slot %d", s), want, got)
	}
	sameOutcome(t, "json", seq.Outcome(), tc.co.Outcome())
}

// TestDistributedSnapshotRestore checkpoints a distributed round
// mid-way, tears the whole cluster down, resumes on a fresh cluster
// with a different shard count from the snapshot alone, and requires
// the final outcome to match an uninterrupted sequential run bitwise.
func TestDistributedSnapshotRestore(t *testing.T) {
	in := genInstance(t, 7)
	byArrival, perSlot := streamPlan(in)
	cut := in.Slots / 2

	seq, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	for s := core.Slot(1); s <= in.Slots; s++ {
		if _, err := seq.Step(byArrival[s], perSlot[s-1]); err != nil {
			t.Fatal(err)
		}
	}
	want := seq.Outcome()

	tc := startCluster(t, 4, in.Slots, in.Value, in.AllocateAtLoss, nil, "")
	for s := core.Slot(1); s <= cut; s++ {
		if _, err := tc.co.Step(byArrival[s], perSlot[s-1]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := tc.co.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tc.Close()

	for _, shards := range []int{1, 2, 8} {
		tc2 := startCluster(t, shards, in.Slots, in.Value, in.AllocateAtLoss, nil, "")
		tc2.co.Close() // replace the fresh coordinator with a restored one
		addrs := make([]string, shards)
		for s := range addrs {
			addrs[s] = "shard-" + strconv.Itoa(s)
		}
		co, err := dshard.Restore(snap, dshard.Options{
			Addrs: addrs, Dial: tc2.dial, Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("restore with %d shards: %v", shards, err)
		}
		tc2.co = co
		if co.Now() != cut {
			t.Fatalf("restored clock %d, want %d", co.Now(), cut)
		}
		for s := cut + 1; s <= in.Slots; s++ {
			if _, err := co.Step(byArrival[s], perSlot[s-1]); err != nil {
				t.Fatal(err)
			}
		}
		sameOutcome(t, fmt.Sprintf("restore s=%d", shards), want, co.Outcome())
		tc2.Close()
	}
}

// TestDistributedShardRestart kills one shard-server process mid-round,
// restarts it empty at the same address, and requires the coordinator
// to reseed it from its snapshot and finish with the exact sequential
// outcome — and every winner paid exactly once.
func TestDistributedShardRestart(t *testing.T) {
	in := genInstance(t, 13)
	byArrival, perSlot := streamPlan(in)

	seq, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	tc := startCluster(t, 4, in.Slots, in.Value, in.AllocateAtLoss, nil, "")
	reg := obs.NewRegistry()
	inst := dshard.NewMetrics(reg, 4)
	tc.co.SetInstruments(inst)

	paidCount := make(map[core.PhoneID]int)
	for s := core.Slot(1); s <= in.Slots; s++ {
		// A rolling outage: a different shard dies (and is restarted
		// cold) every few slots, including back-to-back kills.
		if s%5 == 0 {
			victim := (int(s) / 5) % 4
			tc.killShard(victim)
			tc.restartShard(victim)
		}
		want, err := seq.Step(byArrival[s], perSlot[s-1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.co.Step(byArrival[s], perSlot[s-1])
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		sameSlot(t, fmt.Sprintf("slot %d", s), want, got)
		for _, n := range got.Payments {
			paidCount[n.Phone]++
		}
	}
	sameOutcome(t, "shard restart", seq.Outcome(), tc.co.Outcome())

	out := tc.co.Outcome()
	for ph, n := range paidCount {
		if n != 1 {
			t.Fatalf("phone %d paid %d times", ph, n)
		}
		if out.Allocation.WonAt[ph] == 0 {
			t.Fatalf("non-winner %d was paid", ph)
		}
	}
	reseeds := uint64(0)
	for s := 0; s < 4; s++ {
		reseeds += inst.Reseeds[s].Value()
	}
	if reseeds == 0 {
		t.Fatal("no reseeds recorded — the kills never exercised recovery")
	}
}

// TestClusterMechanism sanity-checks the crowdsim adapter: a full
// batch-instance run through a real cluster matches the sequential
// mechanism bitwise.
func TestClusterMechanism(t *testing.T) {
	baseline := &core.OnlineMechanism{}
	for _, shards := range []int{1, 3} {
		mech := &dshard.Mechanism{Shards: shards}
		for seed := uint64(1); seed <= 2; seed++ {
			in := genInstance(t, seed)
			want, err := baseline.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mech.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, fmt.Sprintf("mech s=%d seed=%d", shards, seed), want, got)
		}
	}
}

// TestCoordinatorErrors covers construction and step guards.
func TestCoordinatorErrors(t *testing.T) {
	if _, err := dshard.New(dshard.Options{Slots: 10, Value: 30}); err == nil {
		t.Fatal("want error for no addresses")
	}
	if _, err := dshard.New(dshard.Options{
		Addrs: []string{"a"}, Slots: 10, Value: 30, Wire: "bogus",
		Dial: func(string) (net.Conn, error) { return nil, fmt.Errorf("unused") },
	}); err == nil {
		t.Fatal("want error for unknown wire format")
	}
	tc := startCluster(t, 2, 1, 30, false, nil, "")
	if _, err := tc.co.Step(nil, -1); err == nil {
		t.Fatal("want error for negative task count")
	}
	if _, err := tc.co.Step(nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.co.Step(nil, 0); err == nil {
		t.Fatal("want error after round completes")
	}
	tc.co.Close()
	tc2 := startCluster(t, 2, 5, 30, false, nil, "")
	tc2.co.Close()
	if _, err := tc2.co.Step(nil, 0); err == nil {
		t.Fatal("want error after Close")
	}
}
