package dshard_test

import (
	"fmt"
	"net"
	"testing"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/dshard"
	"dynacrowd/internal/workload"
)

// benchFleet is a long-lived shard-server fleet for the distributed
// benchmark: servers boot once per sub-benchmark and each iteration
// dials a fresh coordinator against them, so the measured loop is the
// real per-round cost (join handshake + slot RPCs), not process boot.
type benchFleet struct {
	addrs     []string
	dial      func(string) (net.Conn, error)
	listeners []net.Listener
	servers   []*dshard.Server
}

func (f *benchFleet) Close() {
	for _, srv := range f.servers {
		srv.Close()
	}
	for _, ln := range f.listeners {
		ln.Close()
	}
}

// memFleet serves shards over in-memory duplex pipes (no sockets, no
// kernel round trips): the transport-free upper bound.
func memFleet(b *testing.B, shards int) *benchFleet {
	b.Helper()
	f := &benchFleet{addrs: make([]string, shards)}
	mls := make([]*chaos.MemListener, shards)
	for s := 0; s < shards; s++ {
		f.addrs[s] = fmt.Sprintf("mem://bench/%d", s)
		mls[s] = chaos.NewMemListener(8)
		srv := &dshard.Server{}
		go srv.Serve(mls[s])
		f.servers = append(f.servers, srv)
		f.listeners = append(f.listeners, mls[s])
	}
	f.dial = func(addr string) (net.Conn, error) {
		for s, a := range f.addrs {
			if a == addr {
				return mls[s].Dial()
			}
		}
		return nil, fmt.Errorf("unknown bench address %q", addr)
	}
	return f
}

// tcpFleet serves shards over TCP loopback: what a single-host
// multi-process crowd-shard deployment actually pays per slot.
func tcpFleet(b *testing.B, shards int) *benchFleet {
	b.Helper()
	f := &benchFleet{addrs: make([]string, shards)}
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		f.addrs[s] = ln.Addr().String()
		srv := &dshard.Server{}
		go srv.Serve(ln)
		f.servers = append(f.servers, srv)
		f.listeners = append(f.listeners, ln)
	}
	return f // nil dial: the coordinator uses plain TCP
}

// BenchmarkDistributedSlot measures per-round slot throughput of the
// distributed coordinator on the heavy-traffic workload, over both the
// in-memory transport (protocol cost only) and TCP loopback (adds the
// kernel socket round trips). Outcomes are bit-identical to the
// sequential engine at every point (TestDistributedDifferentialSweep);
// this measures only what the network merge costs. Compare with
// BenchmarkShardedSlot (in-process fan-out) and BenchmarkStreamingSlot
// (sequential) at the repo root; see docs/DISTRIBUTED.md for the
// scaling discussion.
func BenchmarkDistributedSlot(b *testing.B) {
	scn := workload.HeavyTrafficScenario()
	in, err := scn.Generate(2)
	if err != nil {
		b.Fatal(err)
	}
	perSlot := in.TasksPerSlot()
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, bid := range in.Bids {
		byArrival[bid.Arrival] = append(byArrival[bid.Arrival], core.StreamBid{
			Departure: bid.Departure, Cost: bid.Cost,
		})
	}
	transports := []struct {
		name string
		boot func(*testing.B, int) *benchFleet
	}{
		{"mem", memFleet},
		{"tcp", tcpFleet},
	}
	for _, tr := range transports {
		for _, s := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("transport=%s/shards=%d", tr.name, s), func(b *testing.B) {
				fleet := tr.boot(b, s)
				defer fleet.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					co, err := dshard.New(dshard.Options{
						Addrs: fleet.addrs, Dial: fleet.dial,
						Slots: in.Slots, Value: in.Value, AllocateAtLoss: in.AllocateAtLoss,
					})
					if err != nil {
						b.Fatal(err)
					}
					for t := core.Slot(1); t <= in.Slots; t++ {
						if _, err := co.Step(byArrival[t], perSlot[t-1]); err != nil {
							b.Fatal(err)
						}
					}
					co.Close()
				}
				b.ReportMetric(float64(in.Slots), "slots/op")
				b.ReportMetric(float64(len(in.Bids)), "bids/op")
			})
		}
	}
}
