package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dynacrowd/internal/core"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

// TestRNGStreamPinned pins the first outputs of the SplitMix64 stream so
// archived experiment seeds stay replayable forever. These constants are
// from the reference SplitMix64 implementation with seed 0.
func TestRNGStreamPinned(t *testing.T) {
	r := NewRNG(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("parent and child emit identical values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUniformIntBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		v := r.UniformInt(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("value %d never drawn", v)
		}
	}
	if got := r.UniformInt(7, 3); got != 7 {
		t.Fatalf("inverted bounds should return lo, got %d", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(4)
	for _, mean := range []float64{0.5, 3, 6, 40} {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		avg := sum / n
		variance := sumSq/n - avg*avg
		if math.Abs(avg-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g): sample mean %g", mean, avg)
		}
		if math.Abs(variance-mean) > 0.15*mean+0.1 {
			t.Errorf("Poisson(%g): sample variance %g", mean, variance)
		}
	}
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(5)
	const n = 40000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(25)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if avg := sum / n; math.Abs(avg-25) > 1 {
		t.Fatalf("Exponential(25) sample mean %g", avg)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 40000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	avg := sum / n
	if math.Abs(avg) > 0.03 {
		t.Fatalf("Normal sample mean %g", avg)
	}
	if variance := sumSq/n - avg*avg; math.Abs(variance-1) > 0.05 {
		t.Fatalf("Normal sample variance %g", variance)
	}
}

func TestDefaultScenarioMatchesTableI(t *testing.T) {
	s := DefaultScenario()
	if s.Slots != 50 || s.PhoneRate != 6 || s.TaskRate != 3 || s.MeanCost != 25 || s.MeanActiveLength != 5 {
		t.Fatalf("defaults diverge from Table I: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioValidate(t *testing.T) {
	mod := func(f func(*Scenario)) Scenario {
		s := DefaultScenario()
		f(&s)
		return s
	}
	bad := []Scenario{
		mod(func(s *Scenario) { s.Slots = 0 }),
		mod(func(s *Scenario) { s.PhoneRate = -1 }),
		mod(func(s *Scenario) { s.TaskRate = -1 }),
		mod(func(s *Scenario) { s.MeanCost = 0 }),
		mod(func(s *Scenario) { s.MeanActiveLength = 0 }),
		mod(func(s *Scenario) { s.Value = -5 }),
		mod(func(s *Scenario) { s.Costs = 0 }),
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: invalid scenario accepted: %+v", i, s)
		}
		if _, err := s.Generate(1); err == nil {
			t.Errorf("case %d: Generate accepted invalid scenario", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	s := DefaultScenario()
	in, err := s.Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
	// Bids must be sorted by arrival (streaming order).
	for i := 1; i < len(in.Bids); i++ {
		if in.Bids[i].Arrival < in.Bids[i-1].Arrival {
			t.Fatal("bids not in arrival order")
		}
	}
	// Windows never exceed the round and never exceed 2·mean−1 slots.
	for _, b := range in.Bids {
		if l := int(b.Departure - b.Arrival + 1); l > 2*s.MeanActiveLength-1 {
			t.Fatalf("active length %d exceeds max %d", l, 2*s.MeanActiveLength-1)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	s := DefaultScenario()
	a, _ := s.Generate(7)
	b, _ := s.Generate(7)
	c, _ := s.Generate(8)
	if len(a.Bids) != len(b.Bids) || len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Bids {
		if a.Bids[i] != b.Bids[i] {
			t.Fatal("same seed produced different bids")
		}
	}
	if len(a.Bids) == len(c.Bids) {
		same := true
		for i := range a.Bids {
			if a.Bids[i] != c.Bids[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical workloads")
		}
	}
}

func TestGenerateStatistics(t *testing.T) {
	s := DefaultScenario()
	var phones, tasks, costSum, lenSum float64
	var bidCount float64
	const runs = 60
	for seed := uint64(0); seed < runs; seed++ {
		in, err := s.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		phones += float64(len(in.Bids))
		tasks += float64(len(in.Tasks))
		for _, b := range in.Bids {
			costSum += b.Cost
			lenSum += float64(b.Departure - b.Arrival + 1)
			bidCount++
		}
	}
	meanPhones := phones / runs
	meanTasks := tasks / runs
	if want := s.PhoneRate * float64(s.Slots); math.Abs(meanPhones-want) > 0.1*want {
		t.Errorf("mean phones per round %g, want ≈ %g", meanPhones, want)
	}
	if want := s.TaskRate * float64(s.Slots); math.Abs(meanTasks-want) > 0.1*want {
		t.Errorf("mean tasks per round %g, want ≈ %g", meanTasks, want)
	}
	if avg := costSum / bidCount; math.Abs(avg-s.MeanCost) > 1 {
		t.Errorf("mean cost %g, want ≈ %g", avg, s.MeanCost)
	}
	// End-of-round clamping shortens some windows, so the observed mean
	// sits slightly below the nominal 5.
	if avg := lenSum / bidCount; avg < 4 || avg > 5.5 {
		t.Errorf("mean active length %g, want ≈ 4.6-5", avg)
	}
}

func TestCostDistributions(t *testing.T) {
	for _, dist := range []CostDistribution{CostUniform, CostExponential, CostNormal} {
		s := DefaultScenario()
		s.Costs = dist
		var sum, count float64
		for seed := uint64(0); seed < 30; seed++ {
			in, err := s.Generate(seed)
			if err != nil {
				t.Fatalf("%v: %v", dist, err)
			}
			for _, b := range in.Bids {
				if b.Cost < 0 {
					t.Fatalf("%v: negative cost", dist)
				}
				sum += b.Cost
				count++
			}
		}
		if avg := sum / count; math.Abs(avg-25) > 2 {
			t.Errorf("%v: mean cost %g, want ≈ 25", dist, avg)
		}
	}
}

func TestCostDistributionString(t *testing.T) {
	if CostUniform.String() != "uniform" || CostExponential.String() != "exponential" || CostNormal.String() != "normal" {
		t.Fatal("String() names wrong")
	}
	if !strings.Contains(CostDistribution(9).String(), "9") {
		t.Fatal("unknown distribution should render its number")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := DefaultScenario()
	s.Slots = 10
	in, err := s.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(s, 42, in)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 42 || back.Scenario != s {
		t.Fatalf("metadata mangled: %+v", back)
	}
	out, err := back.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Bids) != len(in.Bids) || len(out.Tasks) != len(in.Tasks) {
		t.Fatal("shape changed through round trip")
	}
	for i := range in.Bids {
		if out.Bids[i] != in.Bids[i] {
			t.Fatalf("bid %d changed: %+v -> %+v", i, in.Bids[i], out.Bids[i])
		}
	}
	for k := range in.Tasks {
		if out.Tasks[k] != in.Tasks[k] {
			t.Fatalf("task %d changed", k)
		}
	}
	if out.Value != in.Value || out.Slots != in.Slots {
		t.Fatal("instance scalars changed")
	}
}

// TestTraceRoundTripProperty uses testing/quick over random seeds.
func TestTraceRoundTripProperty(t *testing.T) {
	s := DefaultScenario()
	s.Slots = 8
	prop := func(seed uint64) bool {
		in, err := s.Generate(seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := NewTrace(s, seed, in).Write(&buf); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		out, err := back.Materialize()
		if err != nil {
			return false
		}
		if len(out.Bids) != len(in.Bids) {
			return false
		}
		for i := range in.Bids {
			if out.Bids[i] != in.Bids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ReadTrace(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("want version error")
	}
	if _, err := ReadTrace(strings.NewReader(`{"version": 1, "bogusField": 3}`)); err == nil {
		t.Fatal("want unknown-field error")
	}
}

func TestMaterializeRejectsBadInstance(t *testing.T) {
	tr := &Trace{Version: traceFormatVersion}
	tr.Instance.Slots = 5
	tr.Instance.Value = 10
	tr.Instance.Bids = []traceBid{{Arrival: 0, Departure: 3, Cost: 1}} // arrival 0 invalid
	if _, err := tr.Materialize(); err == nil {
		t.Fatal("want validation error")
	}
	tr2 := &Trace{Version: 99}
	if _, err := tr2.Materialize(); err == nil {
		t.Fatal("want version error")
	}
}

// TestGeneratedInstancesDriveMechanisms is a smoke check that generated
// rounds run through both mechanisms at paper scale.
func TestGeneratedInstancesDriveMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale instance")
	}
	s := DefaultScenario()
	in, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	on, err := (&core.OnlineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	off, err := (&core.OfflineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if on.Welfare <= 0 || off.Welfare <= 0 {
		t.Fatalf("degenerate welfare: online %g offline %g", on.Welfare, off.Welfare)
	}
	if off.Welfare < on.Welfare {
		t.Fatalf("offline optimum %g below online %g", off.Welfare, on.Welfare)
	}
}
