package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"dynacrowd/internal/core"
)

// traceFormatVersion guards against silently reading traces written by
// incompatible future layouts.
const traceFormatVersion = 1

// Trace is an archived auction round: the scenario and seed it was drawn
// from plus the fully materialized instance, so a trace is replayable
// even if the generator's sampling ever changes.
type Trace struct {
	Version  int           `json:"version"`
	Scenario Scenario      `json:"scenario"`
	Seed     uint64        `json:"seed"`
	Instance traceInstance `json:"instance"`
}

// traceInstance is the JSON shape of core.Instance. core types stay free
// of serialization tags; the mapping lives here at the boundary.
type traceInstance struct {
	Slots          core.Slot   `json:"slots"`
	Value          float64     `json:"value"`
	AllocateAtLoss bool        `json:"allocateAtLoss,omitempty"`
	Bids           []traceBid  `json:"bids"`
	Tasks          []traceTask `json:"tasks"`
}

type traceBid struct {
	Arrival   core.Slot `json:"arrival"`
	Departure core.Slot `json:"departure"`
	Cost      float64   `json:"cost"`
}

type traceTask struct {
	Arrival core.Slot `json:"arrival"`
}

// NewTrace captures an instance (and its provenance) as a trace.
func NewTrace(s Scenario, seed uint64, in *core.Instance) *Trace {
	tr := &Trace{Version: traceFormatVersion, Scenario: s, Seed: seed}
	tr.Instance.Slots = in.Slots
	tr.Instance.Value = in.Value
	tr.Instance.AllocateAtLoss = in.AllocateAtLoss
	for _, b := range in.Bids {
		tr.Instance.Bids = append(tr.Instance.Bids, traceBid{Arrival: b.Arrival, Departure: b.Departure, Cost: b.Cost})
	}
	for _, t := range in.Tasks {
		tr.Instance.Tasks = append(tr.Instance.Tasks, traceTask{Arrival: t.Arrival})
	}
	return tr
}

// Materialize reconstructs the instance recorded in the trace.
func (tr *Trace) Materialize() (*core.Instance, error) {
	if tr.Version != traceFormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", tr.Version, traceFormatVersion)
	}
	in := &core.Instance{
		Slots:          tr.Instance.Slots,
		Value:          tr.Instance.Value,
		AllocateAtLoss: tr.Instance.AllocateAtLoss,
	}
	for i, b := range tr.Instance.Bids {
		in.Bids = append(in.Bids, core.Bid{
			Phone: core.PhoneID(i), Arrival: b.Arrival, Departure: b.Departure, Cost: b.Cost,
		})
	}
	for k, t := range tr.Instance.Tasks {
		in.Tasks = append(in.Tasks, core.Task{ID: core.TaskID(k), Arrival: t.Arrival})
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return in, nil
}

// Write serializes the trace as indented JSON.
func (tr *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}

// ReadTrace parses a trace written by Write.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("read trace: %w", err)
	}
	if tr.Version != traceFormatVersion {
		return nil, fmt.Errorf("read trace: unsupported version %d (want %d)", tr.Version, traceFormatVersion)
	}
	return &tr, nil
}
