package workload

import (
	"fmt"

	"dynacrowd/internal/core"
)

// HeavyScenario is the stress workload the sharded engine is sized
// against: far denser phone arrivals than the paper's Table I,
// Zipf-distributed activity-window lengths (a mass of hit-and-run
// phones with a long tail of phones that camp in the pool all round),
// and bursty task arrivals (quiet slots punctuated by demand spikes
// that force deep top-k merges). The skewed windows keep pool
// occupancy high and uneven across shards, which is exactly the regime
// where partitioned admission pays and where the merge's top-up path
// gets exercised.
type HeavyScenario struct {
	// Slots is m, the round length.
	Slots core.Slot `json:"slots"`
	// PhoneRate is the mean number of phones arriving per slot.
	PhoneRate float64 `json:"phoneRate"`
	// ZipfExponent skews the activity-window length distribution;
	// lengths are drawn Zipf(s) over [1, MaxActiveLength]. Smaller
	// exponents mean heavier tails (more long-lived phones).
	ZipfExponent float64 `json:"zipfExponent"`
	// MaxActiveLength bounds the drawn window length (clipped to the
	// round end like the base scenario).
	MaxActiveLength int `json:"maxActiveLength"`
	// MeanCost is c̄; costs are uniform on [0, 2c̄].
	MeanCost float64 `json:"meanCost"`
	// Value is ν, the per-task value.
	Value float64 `json:"value"`
	// TaskRate is the mean task arrivals in an ordinary slot.
	TaskRate float64 `json:"taskRate"`
	// BurstEvery makes every k-th slot a burst slot (0 disables bursts).
	BurstEvery int `json:"burstEvery"`
	// BurstFactor multiplies TaskRate in burst slots.
	BurstFactor float64 `json:"burstFactor"`
	// AllocateAtLoss is forwarded to the generated instances.
	AllocateAtLoss bool `json:"allocateAtLoss,omitempty"`
}

// HeavyTrafficScenario returns the benchmark-grade configuration:
// ~2000 phones per 50-slot round with every fifth slot demanding six
// times the baseline tasks.
func HeavyTrafficScenario() HeavyScenario {
	return HeavyScenario{
		Slots:           50,
		PhoneRate:       40,
		ZipfExponent:    1.1,
		MaxActiveLength: 50,
		MeanCost:        25,
		Value:           30,
		TaskRate:        4,
		BurstEvery:      5,
		BurstFactor:     6,
	}
}

// HeavyTrafficQuick returns a thinned configuration for unit tests and
// smoke runs: the same shape (Zipf windows, bursts) at a fraction of
// the volume.
func HeavyTrafficQuick() HeavyScenario {
	s := HeavyTrafficScenario()
	s.Slots = 20
	s.PhoneRate = 12
	s.MaxActiveLength = 20
	s.TaskRate = 2
	s.BurstEvery = 4
	s.BurstFactor = 4
	return s
}

// Validate checks the scenario parameters.
func (s HeavyScenario) Validate() error {
	switch {
	case s.Slots < 1:
		return fmt.Errorf("heavy scenario: slots %d < 1", s.Slots)
	case s.PhoneRate < 0:
		return fmt.Errorf("heavy scenario: negative phone rate %g", s.PhoneRate)
	case s.ZipfExponent <= 0:
		return fmt.Errorf("heavy scenario: zipf exponent %g must be positive", s.ZipfExponent)
	case s.MaxActiveLength < 1:
		return fmt.Errorf("heavy scenario: max active length %d < 1", s.MaxActiveLength)
	case s.MeanCost <= 0:
		return fmt.Errorf("heavy scenario: mean cost %g must be positive", s.MeanCost)
	case s.Value < 0:
		return fmt.Errorf("heavy scenario: negative value %g", s.Value)
	case s.TaskRate < 0:
		return fmt.Errorf("heavy scenario: negative task rate %g", s.TaskRate)
	case s.BurstEvery < 0:
		return fmt.Errorf("heavy scenario: negative burst period %d", s.BurstEvery)
	case s.BurstEvery > 0 && s.BurstFactor < 1:
		return fmt.Errorf("heavy scenario: burst factor %g < 1", s.BurstFactor)
	}
	return nil
}

// Generate draws one heavy-traffic round. Bids are ordered by arrival
// slot with Phone equal to index, like Scenario.Generate, so instances
// stream through the online engines with IDs preserved. The same
// (scenario, seed) pair always yields the identical instance.
func (s HeavyScenario) Generate(seed uint64) (*core.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	zipf := NewZipf(s.MaxActiveLength, s.ZipfExponent)
	in := &core.Instance{Slots: s.Slots, Value: s.Value, AllocateAtLoss: s.AllocateAtLoss}
	for t := core.Slot(1); t <= s.Slots; t++ {
		for k := rng.Poisson(s.PhoneRate); k > 0; k-- {
			depart := t + core.Slot(zipf.Sample(rng)) - 1
			if depart > s.Slots {
				depart = s.Slots
			}
			in.Bids = append(in.Bids, core.Bid{
				Phone:     core.PhoneID(len(in.Bids)),
				Arrival:   t,
				Departure: depart,
				Cost:      rng.Uniform(0, 2*s.MeanCost),
			})
		}
		rate := s.TaskRate
		if s.BurstEvery > 0 && int(t)%s.BurstEvery == 0 {
			rate *= s.BurstFactor
		}
		for k := rng.Poisson(rate); k > 0; k-- {
			in.Tasks = append(in.Tasks, core.Task{
				ID:      core.TaskID(len(in.Tasks)),
				Arrival: t,
			})
		}
	}
	return in, nil
}
