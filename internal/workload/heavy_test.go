package workload

import (
	"math"
	"testing"
)

func TestHeavyScenarioDeterministic(t *testing.T) {
	scn := HeavyTrafficQuick()
	a, err := scn.Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scn.Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bids) != len(b.Bids) || len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("same seed differs: %d/%d bids, %d/%d tasks", len(a.Bids), len(b.Bids), len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Bids {
		if a.Bids[i] != b.Bids[i] {
			t.Fatalf("bid %d differs: %+v vs %+v", i, a.Bids[i], b.Bids[i])
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated instance invalid: %v", err)
	}
}

func TestHeavyScenarioShape(t *testing.T) {
	scn := HeavyTrafficScenario()
	in, err := scn.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	// Volume: the point of the scenario is a dense pool.
	if len(in.Bids) < 1000 {
		t.Fatalf("heavy round has only %d bids", len(in.Bids))
	}

	// Bursts: burst slots must carry visibly more tasks than quiet ones.
	perSlot := in.TasksPerSlot()
	var burstSum, quietSum, burstN, quietN float64
	for t0 := 1; t0 <= int(scn.Slots); t0++ {
		if t0%scn.BurstEvery == 0 {
			burstSum += float64(perSlot[t0-1])
			burstN++
		} else {
			quietSum += float64(perSlot[t0-1])
			quietN++
		}
	}
	if burstSum/burstN < 2*quietSum/quietN {
		t.Fatalf("burst slots average %.1f tasks vs %.1f quiet — bursts not visible", burstSum/burstN, quietSum/quietN)
	}

	// Zipf windows: length-1 windows dominate, but a genuine long tail
	// survives (some phone stays nearly the whole round).
	short, long := 0, 0
	for _, b := range in.Bids {
		length := int(b.Departure-b.Arrival) + 1
		if length == 1 {
			short++
		}
		if length >= int(scn.Slots)/2 {
			long++
		}
	}
	if short < len(in.Bids)/5 {
		t.Fatalf("only %d/%d length-1 windows; Zipf mass missing", short, len(in.Bids))
	}
	if long == 0 {
		t.Fatal("no long-lived phones; Zipf tail missing")
	}
}

func TestHeavyScenarioValidate(t *testing.T) {
	bad := []func(*HeavyScenario){
		func(s *HeavyScenario) { s.Slots = 0 },
		func(s *HeavyScenario) { s.PhoneRate = -1 },
		func(s *HeavyScenario) { s.ZipfExponent = 0 },
		func(s *HeavyScenario) { s.MaxActiveLength = 0 },
		func(s *HeavyScenario) { s.MeanCost = 0 },
		func(s *HeavyScenario) { s.Value = -1 },
		func(s *HeavyScenario) { s.TaskRate = -1 },
		func(s *HeavyScenario) { s.BurstEvery = -1 },
		func(s *HeavyScenario) { s.BurstFactor = 0.5 },
	}
	for i, mutate := range bad {
		s := HeavyTrafficScenario()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("mutation %d passed validation", i)
		}
	}
}

func TestZipfSampler(t *testing.T) {
	z := NewZipf(10, 1.0)
	rng := NewRNG(5)
	counts := make([]int, 11)
	const n = 20000
	for i := 0; i < n; i++ {
		k := z.Sample(rng)
		if k < 1 || k > 10 {
			t.Fatalf("sample %d outside [1,10]", k)
		}
		counts[k]++
	}
	// P(1) ≈ 1/H_10 ≈ 0.341; verify monotone-ish decay head over tail.
	if counts[1] <= counts[2] || counts[2] <= counts[5] {
		t.Fatalf("zipf head not dominant: %v", counts[1:])
	}
	p1 := float64(counts[1]) / n
	if math.Abs(p1-0.3414) > 0.02 {
		t.Fatalf("P(1) = %.3f, want ≈ 0.341", p1)
	}
	// Degenerate support clamps to [1,1].
	one := NewZipf(0, 1.5)
	if k := one.Sample(rng); k != 1 {
		t.Fatalf("degenerate zipf sampled %d", k)
	}
}
