package workload

import (
	"testing"

	"dynacrowd/internal/core"
)

func TestRealizationModelValidate(t *testing.T) {
	cases := []struct {
		name string
		m    RealizationModel
	}{
		{"empty", RealizationModel{}},
		{"negative weight", RealizationModel{Classes: []ReliabilityClass{{Weight: -1}}}},
		{"zero total weight", RealizationModel{Classes: []ReliabilityClass{{Weight: 0}}}},
		{"no-show out of range", RealizationModel{Classes: []ReliabilityClass{{Weight: 1, NoShow: 1.5}}}},
		{"late without bound", RealizationModel{Classes: []ReliabilityClass{{Weight: 1, LateShow: 0.5}}}},
		{"vanish out of range", RealizationModel{Classes: []ReliabilityClass{{Weight: 1, Vanish: -0.1}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid model", tc.name)
		}
	}
	for _, m := range []RealizationModel{ReliableModel(), TieredModel(), ChaosModel()} {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in model invalid: %v", err)
		}
	}
}

func TestRealizationDeterministic(t *testing.T) {
	in, err := HeavyTrafficQuick().Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ChaosModel().Realize(in, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosModel().Realize(in, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Bids {
		if a.Class[i] != b.Class[i] || a.Arrive[i] != b.Arrive[i] || a.Depart[i] != b.Depart[i] {
			t.Fatalf("phone %d: realization differs across identical draws", i)
		}
	}
	c, err := ChaosModel().Realize(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range in.Bids {
		if a.Arrive[i] != c.Arrive[i] || a.Depart[i] != c.Depart[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical realizations")
	}
}

func TestRealizationSemantics(t *testing.T) {
	in, err := DefaultScenario().Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ReliableModel().Realize(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range in.Bids {
		p := core.PhoneID(i)
		if rel.Arrive[p] != b.Arrival || rel.Depart[p] != b.Departure {
			t.Fatalf("reliable phone %d realized [%d,%d], declared [%d,%d]",
				i, rel.Arrive[p], rel.Depart[p], b.Arrival, b.Departure)
		}
		if !rel.Present(p, b.Arrival) || !rel.Completes(p, b.Departure) {
			t.Fatalf("reliable phone %d not present over its window", i)
		}
	}

	ghost := RealizationModel{Classes: []ReliabilityClass{{Name: "ghost", Weight: 1, NoShow: 1}}}
	gr, err := ghost.Realize(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range in.Bids {
		for t2 := b.Arrival; t2 <= b.Departure; t2++ {
			if gr.Present(core.PhoneID(i), t2) {
				t.Fatalf("ghost phone %d present in slot %d", i, t2)
			}
		}
	}

	// Realized presence always stays within the declared window.
	ch, err := ChaosModel().Realize(in, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range in.Bids {
		if ch.Arrive[i] > ch.Depart[i] {
			continue // never present
		}
		if ch.Arrive[i] < b.Arrival || ch.Depart[i] > b.Departure {
			t.Fatalf("phone %d realized [%d,%d] outside declared [%d,%d]",
				i, ch.Arrive[i], ch.Depart[i], b.Arrival, b.Departure)
		}
	}
}

func TestRealizationClassMix(t *testing.T) {
	in, err := HeavyTrafficScenario().Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	model := TieredModel()
	r, err := model.Realize(in, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(model.Classes))
	for _, c := range r.Class {
		counts[c]++
	}
	n := float64(len(in.Bids))
	for ci, c := range model.Classes {
		got := float64(counts[ci]) / n
		if got < c.Weight-0.05 || got > c.Weight+0.05 {
			t.Errorf("class %s: fraction %.3f far from weight %.2f (n=%d)", c.Name, got, c.Weight, len(in.Bids))
		}
	}
}

// TestRealizationResolve drives a whole round through the sequential
// engine with Resolve and checks the lifecycle tallies are consistent:
// every assignment resolved, defaulted winners paid zero, completed
// winners' tasks paid at most once.
func TestRealizationResolve(t *testing.T) {
	in, err := HeavyTrafficQuick().Generate(21)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ChaosModel().Realize(in, 22)
	if err != nil {
		t.Fatal(err)
	}
	oa, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	oa.TrackCompletions(true)
	bi, ti := 0, 0
	var completed, defaulted int
	for s := core.Slot(1); s <= in.Slots; s++ {
		var arriving []core.StreamBid
		for ; bi < len(in.Bids) && in.Bids[bi].Arrival == s; bi++ {
			arriving = append(arriving, core.StreamBid{Departure: in.Bids[bi].Departure, Cost: in.Bids[bi].Cost})
		}
		tasks := 0
		for ; ti < len(in.Tasks) && in.Tasks[ti].Arrival == s; ti++ {
			tasks++
		}
		res, err := oa.Step(arriving, tasks)
		if err != nil {
			t.Fatal(err)
		}
		c, d, err := rel.Resolve(oa, res)
		if err != nil {
			t.Fatal(err)
		}
		completed += c
		defaulted += d
	}
	counts := oa.CompletionCounts()
	if int(counts.Completed) != completed || int(counts.Defaulted) != defaulted {
		t.Fatalf("counts %+v disagree with tallies completed=%d defaulted=%d", counts, completed, defaulted)
	}
	if counts.Reallocated+counts.Unreplaced != counts.Defaulted {
		t.Fatalf("defaults %d != reallocated %d + unreplaced %d", counts.Defaulted, counts.Reallocated, counts.Unreplaced)
	}
	if counts.Defaulted == 0 {
		t.Fatal("chaos model produced no defaults; soak would not exercise re-allocation")
	}
	out := oa.Outcome()
	for i := range in.Bids {
		st := oa.Completion(core.PhoneID(i))
		if st.Status == core.StatusDefaulted && out.Payments[i] != 0 {
			t.Fatalf("defaulted phone %d paid %g", i, out.Payments[i])
		}
	}
}
