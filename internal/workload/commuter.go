package workload

import (
	"fmt"

	"dynacrowd/internal/core"
)

// CommuterScenario generates supply from a population of commuters
// rather than a memoryless Poisson stream: each person's phone becomes
// available during up to three idle periods of the day — on the morning
// commute, over lunch, and on the evening commute — with per-person
// jitter. The same person contributes at most one bid per idle period
// (each period is a separate market entry with its own window, matching
// the paper's one-bid-per-round rule applied per appearance).
//
// Compared to Scenario's stationary arrivals, commuter supply is bursty
// and correlated, which stresses the online mechanism's worst side:
// tasks arriving off-peak find a thin market. The citysense example and
// robustness experiments use it as the "realistic city" workload.
type CommuterScenario struct {
	// People is the population size (each contributes 1-3 windows).
	People int
	// Slots is the day length m; idle periods scale with it.
	Slots core.Slot
	// MeanCost is c̄ as in Scenario; costs are U[0, 2c̄].
	MeanCost float64
	// Value is ν per task.
	Value float64
	// LunchFraction is the chance a person also idles at midday.
	LunchFraction float64
}

// DefaultCommuterScenario mirrors Table I's magnitudes over a 48-slot
// day (one slot per half hour of a 6:00-20:00 span, settings rounded).
func DefaultCommuterScenario() CommuterScenario {
	return CommuterScenario{
		People:        150,
		Slots:         48,
		MeanCost:      25,
		Value:         30,
		LunchFraction: 0.4,
	}
}

// Validate checks the parameters.
func (c CommuterScenario) Validate() error {
	switch {
	case c.People < 1:
		return fmt.Errorf("commuter: population %d < 1", c.People)
	case c.Slots < 8:
		return fmt.Errorf("commuter: day of %d slots too short (need ≥ 8)", c.Slots)
	case c.MeanCost <= 0:
		return fmt.Errorf("commuter: mean cost %g must be positive", c.MeanCost)
	case c.Value < 0:
		return fmt.Errorf("commuter: negative value %g", c.Value)
	case c.LunchFraction < 0 || c.LunchFraction > 1:
		return fmt.Errorf("commuter: lunch fraction %g outside [0,1]", c.LunchFraction)
	}
	return nil
}

// Generate draws one day of commuter supply. Bids are ordered by
// arrival with dense PhoneIDs, ready for core.Instance.
func (c CommuterScenario) Generate(seed uint64) (*core.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	m := int(c.Slots)

	// Anchor the three idle periods at fractions of the day.
	anchor := func(frac float64) int { return 1 + int(frac*float64(m-1)) }
	morning, lunch, evening := anchor(0.15), anchor(0.5), anchor(0.8)

	type window struct {
		a, d core.Slot
		cost float64
	}
	var windows []window
	addWindow := func(center int, cost float64) {
		start := center + rng.UniformInt(-2, 2)
		length := rng.UniformInt(1, 4)
		if start < 1 {
			start = 1
		}
		if start > m {
			start = m
		}
		end := start + length - 1
		if end > m {
			end = m
		}
		windows = append(windows, window{a: core.Slot(start), d: core.Slot(end), cost: cost})
	}

	for p := 0; p < c.People; p++ {
		cost := rng.Uniform(0, 2*c.MeanCost) // a person's intrinsic cost
		addWindow(morning, cost)
		if rng.Float64() < c.LunchFraction {
			addWindow(lunch, cost)
		}
		addWindow(evening, cost)
	}

	// Sort by arrival and number densely.
	for i := 1; i < len(windows); i++ {
		for j := i; j > 0 && windows[j].a < windows[j-1].a; j-- {
			windows[j], windows[j-1] = windows[j-1], windows[j]
		}
	}
	in := &core.Instance{Slots: c.Slots, Value: c.Value}
	for i, w := range windows {
		in.Bids = append(in.Bids, core.Bid{
			Phone: core.PhoneID(i), Arrival: w.a, Departure: w.d, Cost: w.cost,
		})
	}
	return in, nil
}

// WithTasks adds Poisson task arrivals at the given rate to a commuter
// instance (tasks arrive uniformly through the day, which is exactly
// the supply-demand misalignment the model is for).
func (c CommuterScenario) WithTasks(in *core.Instance, rate float64, seed uint64) *core.Instance {
	rng := NewRNG(seed ^ 0x5eed7a5c)
	out := in.Clone()
	for t := core.Slot(1); t <= c.Slots; t++ {
		for k := rng.Poisson(rate); k > 0; k-- {
			out.Tasks = append(out.Tasks, core.Task{
				ID:      core.TaskID(len(out.Tasks)),
				Arrival: t,
			})
		}
	}
	return out
}
