package workload

import (
	"fmt"

	"dynacrowd/internal/core"
)

// CostDistribution selects how per-task real costs are drawn.
type CostDistribution int

// Supported cost distributions. The paper specifies only the average real
// cost; CostUniform (mean c̄ over [c̄/2, 3c̄/2]) is the default, the
// others support sensitivity studies.
const (
	CostUniform CostDistribution = iota + 1
	CostExponential
	CostNormal // mean c̄, σ = c̄/4, truncated at 0
)

// String implements fmt.Stringer.
func (d CostDistribution) String() string {
	switch d {
	case CostUniform:
		return "uniform"
	case CostExponential:
		return "exponential"
	case CostNormal:
		return "normal"
	default:
		return fmt.Sprintf("CostDistribution(%d)", int(d))
	}
}

// Scenario holds the workload parameters of the paper's Table I. The
// zero value is not useful; start from DefaultScenario.
type Scenario struct {
	// Slots is m, the number of slots in a round (Table I: 50).
	Slots core.Slot `json:"slots"`
	// PhoneRate is λ, the mean number of smartphones arriving per slot
	// (Table I: 6).
	PhoneRate float64 `json:"phoneRate"`
	// TaskRate is λ_t, the mean number of sensing tasks arriving per slot
	// (Table I: 3).
	TaskRate float64 `json:"taskRate"`
	// MeanCost is c̄, the average real cost (Table I: 25).
	MeanCost float64 `json:"meanCost"`
	// MeanActiveLength is the average active-time length in slots
	// (Table I: 5, i.e. 10% of the default 50 slots). Lengths are drawn
	// uniformly from [1, 2·mean−1] so the mean matches.
	MeanActiveLength int `json:"meanActiveLength"`
	// Value is ν, the platform's fixed value per completed task. The
	// paper leaves ν unspecified, but its reported welfare magnitudes
	// (a few hundred for ~150 tasks at c̄ = 25) imply a thin margin of ν
	// over the mean cost; the default 30 reproduces that regime and the
	// visible online/offline gap. See DESIGN.md §2 and EXPERIMENTS.md.
	Value float64 `json:"value"`
	// Costs selects the cost distribution (default CostUniform).
	Costs CostDistribution `json:"costs"`
	// CostSpread sets the relative half-width of the uniform cost
	// distribution: costs are drawn from U[c̄(1−s), c̄(1+s)]. The paper
	// specifies only the average; the default 1 (costs from 0 to 2c̄)
	// reproduces the paper's overpayment magnitudes, which are sensitive
	// to how cheap the cheapest phones are. Ignored by the non-uniform
	// distributions.
	CostSpread float64 `json:"costSpread"`
	// AllocateAtLoss is forwarded to the generated instances.
	AllocateAtLoss bool `json:"allocateAtLoss,omitempty"`
}

// DefaultScenario returns the paper's Table I settings.
func DefaultScenario() Scenario {
	return Scenario{
		Slots:            50,
		PhoneRate:        6,
		TaskRate:         3,
		MeanCost:         25,
		MeanActiveLength: 5,
		Value:            30,
		Costs:            CostUniform,
		CostSpread:       1,
	}
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	switch {
	case s.Slots < 1:
		return fmt.Errorf("scenario: slots %d < 1", s.Slots)
	case s.PhoneRate < 0:
		return fmt.Errorf("scenario: negative phone rate %g", s.PhoneRate)
	case s.TaskRate < 0:
		return fmt.Errorf("scenario: negative task rate %g", s.TaskRate)
	case s.MeanCost <= 0:
		return fmt.Errorf("scenario: mean cost %g must be positive", s.MeanCost)
	case s.MeanActiveLength < 1:
		return fmt.Errorf("scenario: mean active length %d < 1", s.MeanActiveLength)
	case s.Value < 0:
		return fmt.Errorf("scenario: negative value %g", s.Value)
	case s.Costs == CostUniform && (s.CostSpread <= 0 || s.CostSpread > 1):
		return fmt.Errorf("scenario: cost spread %g outside (0, 1]", s.CostSpread)
	}
	switch s.Costs {
	case CostUniform, CostExponential, CostNormal:
	default:
		return fmt.Errorf("scenario: unknown cost distribution %d", int(s.Costs))
	}
	return nil
}

// sampleCost draws one real cost.
func (s Scenario) sampleCost(rng *RNG) float64 {
	switch s.Costs {
	case CostExponential:
		return rng.Exponential(s.MeanCost)
	case CostNormal:
		c := s.MeanCost + rng.Normal()*s.MeanCost/4
		if c < 0 {
			c = 0
		}
		return c
	default:
		return rng.Uniform(s.MeanCost*(1-s.CostSpread), s.MeanCost*(1+s.CostSpread))
	}
}

// Generate draws one auction round from the scenario using the given
// seed. Bids are ordered by arrival slot (the order a streaming platform
// would observe), tasks by arrival. The same (scenario, seed) pair always
// yields the identical instance.
func (s Scenario) Generate(seed uint64) (*core.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	in := &core.Instance{Slots: s.Slots, Value: s.Value, AllocateAtLoss: s.AllocateAtLoss}
	for t := core.Slot(1); t <= s.Slots; t++ {
		for k := rng.Poisson(s.PhoneRate); k > 0; k-- {
			length := rng.UniformInt(1, 2*s.MeanActiveLength-1)
			depart := t + core.Slot(length) - 1
			if depart > s.Slots {
				depart = s.Slots
			}
			in.Bids = append(in.Bids, core.Bid{
				Phone:     core.PhoneID(len(in.Bids)),
				Arrival:   t,
				Departure: depart,
				Cost:      s.sampleCost(rng),
			})
		}
		for k := rng.Poisson(s.TaskRate); k > 0; k-- {
			in.Tasks = append(in.Tasks, core.Task{
				ID:      core.TaskID(len(in.Tasks)),
				Arrival: t,
			})
		}
	}
	return in, nil
}
