package workload

import (
	"fmt"

	"dynacrowd/internal/core"
)

// This file models the gap between a phone's declared activity window
// and its realized presence — the uncertainty axis the paper abstracts
// away (it assumes every winner performs its task). Each phone is drawn
// into a reliability class; the class decides whether the phone
// no-shows entirely, shows up late, or vanishes before its declared
// departure. The realization drives the completion lifecycle
// (internal/core): a winner absent in its task's slot defaults, its
// task is re-allocated, and its payment is clawed back.

// ReliabilityClass describes one population tier's failure behavior.
// Probabilities are independent: a phone may be drawn both late and
// vanishing (a brief appearance in the middle of its window).
type ReliabilityClass struct {
	Name string `json:"name"`
	// Weight is the class's share of the population (normalized over
	// the model's classes; they need not sum to 1).
	Weight float64 `json:"weight"`
	// NoShow is the probability the phone never appears at all.
	NoShow float64 `json:"noShow"`
	// LateShow is the probability realized presence starts after the
	// declared arrival, by 1..MaxLateSlots slots (uniform).
	LateShow float64 `json:"lateShow"`
	// MaxLateSlots bounds the late-show slip (≥ 1 when LateShow > 0).
	MaxLateSlots int `json:"maxLateSlots,omitempty"`
	// Vanish is the probability the phone disappears before its
	// declared departure: realized departure is uniform between
	// "immediately after showing up minus one" (present for no full
	// slot) and one slot short of the declared departure.
	Vanish float64 `json:"vanish"`
}

// RealizationModel is a mixture of reliability classes.
type RealizationModel struct {
	Classes []ReliabilityClass `json:"classes"`
}

// ReliableModel returns the paper's implicit assumption: every phone is
// present for its whole declared window.
func ReliableModel() RealizationModel {
	return RealizationModel{Classes: []ReliabilityClass{{Name: "reliable", Weight: 1}}}
}

// TieredModel returns a moderately unreliable population: most phones
// deliver, a flaky tier slips and vanishes, and a small ghost tier
// bids without ever appearing.
func TieredModel() RealizationModel {
	return RealizationModel{Classes: []ReliabilityClass{
		{Name: "reliable", Weight: 0.60},
		{Name: "flaky", Weight: 0.30, LateShow: 0.5, MaxLateSlots: 2, Vanish: 0.5},
		{Name: "ghost", Weight: 0.10, NoShow: 1},
	}}
}

// ChaosModel returns the soak-test population, tuned so well over 20%
// of winners default: a thin reliable tier, a large flaky tier, and a
// heavy ghost tier.
func ChaosModel() RealizationModel {
	return RealizationModel{Classes: []ReliabilityClass{
		{Name: "reliable", Weight: 0.40},
		{Name: "flaky", Weight: 0.35, LateShow: 0.6, MaxLateSlots: 3, Vanish: 0.6},
		{Name: "ghost", Weight: 0.25, NoShow: 1},
	}}
}

// Validate checks the model parameters.
func (m RealizationModel) Validate() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("realization model: no classes")
	}
	total := 0.0
	for i, c := range m.Classes {
		switch {
		case c.Weight < 0:
			return fmt.Errorf("realization class %d (%s): negative weight %g", i, c.Name, c.Weight)
		case c.NoShow < 0 || c.NoShow > 1:
			return fmt.Errorf("realization class %d (%s): no-show probability %g outside [0,1]", i, c.Name, c.NoShow)
		case c.LateShow < 0 || c.LateShow > 1:
			return fmt.Errorf("realization class %d (%s): late-show probability %g outside [0,1]", i, c.Name, c.LateShow)
		case c.Vanish < 0 || c.Vanish > 1:
			return fmt.Errorf("realization class %d (%s): vanish probability %g outside [0,1]", i, c.Name, c.Vanish)
		case c.LateShow > 0 && c.MaxLateSlots < 1:
			return fmt.Errorf("realization class %d (%s): late-show needs MaxLateSlots ≥ 1", i, c.Name)
		}
		total += c.Weight
	}
	if total <= 0 {
		return fmt.Errorf("realization model: class weights sum to %g", total)
	}
	return nil
}

// Realization is the drawn ground truth for one instance: per phone,
// the class it fell into and the slots it is actually present for.
// Present[i] is [Arrive[i], Depart[i]]; Arrive > Depart means the phone
// never appears.
type Realization struct {
	Class  []int       `json:"class"`
	Arrive []core.Slot `json:"arrive"`
	Depart []core.Slot `json:"depart"`
}

// Realize draws one realization for the instance's bids. The same
// (model, instance, seed) triple always yields the identical
// realization, so realization scripts replay bit-for-bit across
// engines and processes.
func (m RealizationModel) Realize(in *core.Instance, seed uint64) (*Realization, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	total := 0.0
	for _, c := range m.Classes {
		total += c.Weight
	}
	rng := NewRNG(seed)
	r := &Realization{
		Class:  make([]int, len(in.Bids)),
		Arrive: make([]core.Slot, len(in.Bids)),
		Depart: make([]core.Slot, len(in.Bids)),
	}
	for i, b := range in.Bids {
		u := rng.Float64() * total
		ci := 0
		for ci < len(m.Classes)-1 && u >= m.Classes[ci].Weight {
			u -= m.Classes[ci].Weight
			ci++
		}
		c := m.Classes[ci]
		r.Class[i] = ci
		arrive, depart := b.Arrival, b.Departure
		if rng.Float64() < c.NoShow {
			r.Arrive[i], r.Depart[i] = 1, 0 // never present
			continue
		}
		if rng.Float64() < c.LateShow {
			arrive += core.Slot(rng.UniformInt(1, c.MaxLateSlots))
		}
		if rng.Float64() < c.Vanish {
			// Uniform over [arrive-1, declared depart-1]: anywhere from
			// "gone before completing a single slot" to one slot early.
			depart = arrive - 1 + core.Slot(rng.UniformInt(0, int(depart-arrive)))
		}
		if arrive > b.Departure {
			r.Arrive[i], r.Depart[i] = 1, 0 // slipped past its own window
			continue
		}
		r.Arrive[i], r.Depart[i] = arrive, depart
	}
	return r, nil
}

// Present reports whether phone p is actually around in slot t.
func (r *Realization) Present(p core.PhoneID, t core.Slot) bool {
	return r.Arrive[p] <= t && t <= r.Depart[p]
}

// Completes reports whether phone p would deliver a task served in slot
// t: it must actually be present in that slot.
func (r *Realization) Completes(p core.PhoneID, t core.Slot) bool { return r.Present(p, t) }

// Resolve applies the realization to one slot's fresh assignments: each
// winner present in its task's slot completes; each absent winner
// defaults, and the default's replacement is resolved the same way
// until the task sticks with a present phone or goes unserved. It
// returns the lifecycle tallies for the slot and appends any immediate
// replacement payments to res.Payments so callers see every notice the
// slot produced.
func (r *Realization) Resolve(a core.Auction, res *core.SlotResult) (completed, defaulted int, err error) {
	for _, as := range res.Assignments {
		phone := as.Phone
		for {
			if r.Completes(phone, as.Slot) {
				if err := a.Complete(phone); err != nil {
					return completed, defaulted, fmt.Errorf("resolve slot %d: %w", as.Slot, err)
				}
				completed++
				break
			}
			dr, err := a.Default(phone)
			if err != nil {
				return completed, defaulted, fmt.Errorf("resolve slot %d: %w", as.Slot, err)
			}
			defaulted++
			res.Payments = append(res.Payments, dr.Payments...)
			if dr.Replacement == core.NoPhone {
				break
			}
			phone = dr.Replacement
		}
	}
	return completed, defaulted, nil
}
