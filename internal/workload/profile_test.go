package workload

import (
	"math"
	"strings"
	"testing"

	"dynacrowd/internal/core"
)

func TestFlatProfile(t *testing.T) {
	p := FlatProfile{}
	if p.Name() != "flat" {
		t.Fatal("name")
	}
	for _, tc := range []core.Slot{1, 25, 50} {
		if p.Multiplier(tc, 50) != 1 {
			t.Fatalf("flat multiplier at %d != 1", tc)
		}
	}
}

func TestDiurnalProfileShape(t *testing.T) {
	p := DiurnalProfile{Amplitude: 1}
	if !strings.Contains(p.Name(), "1.00") {
		t.Fatal("name")
	}
	const m = 51
	start := p.Multiplier(1, m)
	mid := p.Multiplier(26, m)
	end := p.Multiplier(m, m)
	if start >= mid || end >= mid {
		t.Fatalf("diurnal not peaked: start %g mid %g end %g", start, mid, end)
	}
	// Non-negative everywhere; mean ≈ 1.
	var sum float64
	for s := core.Slot(1); s <= m; s++ {
		v := p.Multiplier(s, m)
		if v < 0 {
			t.Fatalf("negative multiplier %g at slot %d", v, s)
		}
		sum += v
	}
	if mean := sum / m; math.Abs(mean-1) > 0.1 {
		t.Fatalf("diurnal mean %g, want ≈ 1", mean)
	}
	// Zero amplitude degenerates to flat.
	flat := DiurnalProfile{Amplitude: 0}
	if flat.Multiplier(10, m) != 1 {
		t.Fatal("zero-amplitude diurnal not flat")
	}
	if (DiurnalProfile{}).Multiplier(1, 1) != 1 {
		t.Fatal("single-slot round must be flat")
	}
}

func TestRushHourProfileShape(t *testing.T) {
	p := RushHourProfile{Peak: 3}
	const m = 100
	peak1 := p.Multiplier(26, m) // ≈ 25% of the round
	trough := p.Multiplier(50, m)
	peak2 := p.Multiplier(76, m)
	if peak1 <= trough || peak2 <= trough {
		t.Fatalf("no rush-hour peaks: %g / %g / %g", peak1, trough, peak2)
	}
	if peak1 < 2 || peak2 < 2 {
		t.Fatalf("peaks too small: %g, %g", peak1, peak2)
	}
	var sum float64
	for s := core.Slot(1); s <= m; s++ {
		v := p.Multiplier(s, m)
		if v < 0 {
			t.Fatalf("negative multiplier at %d", s)
		}
		sum += v
	}
	if mean := sum / m; mean < 0.6 || mean > 1.4 {
		t.Fatalf("rush-hour mean %g strays from 1", mean)
	}
	if (RushHourProfile{Peak: 1}).Multiplier(10, m) != 1 {
		t.Fatal("peak 1 must be flat")
	}
}

func TestGenerateWithProfiles(t *testing.T) {
	s := DefaultScenario()
	s.Slots = 60
	in, err := s.GenerateWithProfiles(5, RushHourProfile{Peak: 4}, DiurnalProfile{Amplitude: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	// Phone arrivals concentrate at the rush peaks vs the trough.
	perSlot := make([]int, s.Slots+1)
	for _, b := range in.Bids {
		perSlot[b.Arrival]++
	}
	peakZone, troughZone := 0, 0
	for t := 10; t <= 20; t++ { // around 25% of 60
		peakZone += perSlot[t]
	}
	for t := 26; t <= 36; t++ { // middle trough
		troughZone += perSlot[t]
	}
	if peakZone <= troughZone {
		t.Fatalf("rush profile had no effect: peak %d vs trough %d", peakZone, troughZone)
	}
}

func TestGenerateWithProfilesNilIsFlat(t *testing.T) {
	s := DefaultScenario()
	s.Slots = 20
	a, err := s.GenerateWithProfiles(9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bids) != len(b.Bids) || len(a.Tasks) != len(b.Tasks) {
		t.Fatal("nil profiles differ from Generate")
	}
	for i := range a.Bids {
		if a.Bids[i] != b.Bids[i] {
			t.Fatal("nil profiles differ from Generate")
		}
	}
}

func TestGenerateWithProfilesRejectsInvalidScenario(t *testing.T) {
	s := DefaultScenario()
	s.MeanCost = -1
	if _, err := s.GenerateWithProfiles(1, nil, nil); err == nil {
		t.Fatal("want error")
	}
}
