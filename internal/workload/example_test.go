package workload_test

import (
	"fmt"

	"dynacrowd/internal/workload"
)

// ExampleScenario_Generate draws the paper's Table I workload for one
// round; the same seed always yields the identical instance.
func ExampleScenario_Generate() {
	scn := workload.DefaultScenario()
	scn.Slots = 10 // a short round for the example
	in, err := scn.Generate(42)
	if err != nil {
		panic(err)
	}
	again, _ := scn.Generate(42)
	fmt.Printf("phones: %d, tasks: %d, reproducible: %v\n",
		in.NumPhones(), in.NumTasks(), len(in.Bids) == len(again.Bids))
	// Output: phones: 58, tasks: 38, reproducible: true
}
