package workload

import (
	"testing"

	"dynacrowd/internal/core"
)

func TestCommuterValidate(t *testing.T) {
	good := DefaultCommuterScenario()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*CommuterScenario){
		func(c *CommuterScenario) { c.People = 0 },
		func(c *CommuterScenario) { c.Slots = 4 },
		func(c *CommuterScenario) { c.MeanCost = 0 },
		func(c *CommuterScenario) { c.Value = -1 },
		func(c *CommuterScenario) { c.LunchFraction = 2 },
	}
	for i, mod := range mods {
		c := DefaultCommuterScenario()
		mod(&c)
		if c.Validate() == nil {
			t.Errorf("mod %d accepted", i)
		}
		if _, err := c.Generate(1); err == nil {
			t.Errorf("mod %d: Generate accepted invalid scenario", i)
		}
	}
}

func TestCommuterGenerateStructure(t *testing.T) {
	c := DefaultCommuterScenario()
	in, err := c.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each person contributes 2-3 windows.
	if n := in.NumPhones(); n < 2*c.People || n > 3*c.People {
		t.Fatalf("%d windows for %d people", n, c.People)
	}
	for i := 1; i < len(in.Bids); i++ {
		if in.Bids[i].Arrival < in.Bids[i-1].Arrival {
			t.Fatal("bids out of arrival order")
		}
	}
}

// TestCommuterSupplyIsBursty: the rush-hour anchors hold far more
// arrivals than the mid-morning trough.
func TestCommuterSupplyIsBursty(t *testing.T) {
	c := DefaultCommuterScenario()
	perSlot := make([]int, c.Slots+1)
	for seed := uint64(0); seed < 10; seed++ {
		in, err := c.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range in.Bids {
			perSlot[b.Arrival]++
		}
	}
	zone := func(lo, hi int) int {
		s := 0
		for t := lo; t <= hi; t++ {
			s += perSlot[t]
		}
		return s
	}
	morning := zone(5, 12)  // around the 15% anchor of 48 slots
	trough := zone(14, 21)  // between morning and lunch
	evening := zone(36, 43) // around the 80% anchor
	if morning <= 2*trough || evening <= 2*trough {
		t.Fatalf("supply not bursty: morning %d, trough %d, evening %d", morning, trough, evening)
	}
}

func TestCommuterWithTasks(t *testing.T) {
	c := DefaultCommuterScenario()
	in, err := c.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	full := c.WithTasks(in, 1.5, 5)
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(full.Tasks) == 0 {
		t.Fatal("no tasks added")
	}
	if len(in.Tasks) != 0 {
		t.Fatal("original mutated")
	}
	// The full instance drives both mechanisms.
	on, err := (&core.OnlineMechanism{}).Run(full)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (&core.OfflineMechanism{}).Welfare(full)
	if err != nil {
		t.Fatal(err)
	}
	if on.Welfare < opt/2-1e-9 || on.Welfare > opt+1e-9 {
		t.Fatalf("commuter instance: online %g outside [opt/2, opt] of %g", on.Welfare, opt)
	}
}

func TestCommuterDeterministic(t *testing.T) {
	c := DefaultCommuterScenario()
	a, _ := c.Generate(9)
	b, _ := c.Generate(9)
	if len(a.Bids) != len(b.Bids) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Bids {
		if a.Bids[i] != b.Bids[i] {
			t.Fatal("nondeterministic bids")
		}
	}
}
