package workload

import (
	"bytes"
	"testing"

	"dynacrowd/internal/core"
)

// FuzzReadTrace throws arbitrary bytes at the trace parser: no panics,
// and anything it accepts must materialize into a valid instance or
// return a descriptive error.
func FuzzReadTrace(f *testing.F) {
	// Seed with a real trace.
	s := DefaultScenario()
	s.Slots = 5
	in, err := s.Generate(1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewTrace(s, 1, in).Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		inst, err := tr.Materialize()
		if err != nil {
			return
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("Materialize returned invalid instance: %v", err)
		}
	})
}

// FuzzScenarioGenerate drives the generator across the seed space and
// random-ish parameter picks: generated instances must always validate
// and respect the scenario's structural bounds.
func FuzzScenarioGenerate(f *testing.F) {
	f.Add(uint64(0), uint8(10), uint8(3), uint8(2))
	f.Add(uint64(12345), uint8(50), uint8(6), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, slots, rate, length uint8) {
		s := DefaultScenario()
		s.Slots = 1 + core.Slot(slots%100)
		s.PhoneRate = float64(rate % 12)
		s.MeanActiveLength = 1 + int(length%10)
		in, err := s.Generate(seed)
		if err != nil {
			t.Fatalf("valid scenario rejected: %v", err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("generated instance invalid: %v", err)
		}
		for _, b := range in.Bids {
			if l := int(b.Departure - b.Arrival + 1); l > 2*s.MeanActiveLength-1 {
				t.Fatalf("window length %d exceeds bound %d", l, 2*s.MeanActiveLength-1)
			}
		}
	})
}
