package workload

import (
	"fmt"
	"math"

	"dynacrowd/internal/core"
)

// RateProfile modulates an arrival rate over the slots of a round,
// turning the paper's stationary Poisson arrivals into time-varying
// ones (rush hours, overnight lulls). A profile maps a slot to a
// non-negative multiplier applied to the base rate; the identity
// profile reproduces the paper's setup exactly.
type RateProfile interface {
	// Name identifies the profile in reports.
	Name() string
	// Multiplier returns the rate multiplier for slot t of a round of m
	// slots. Implementations must return non-negative values.
	Multiplier(t, m core.Slot) float64
}

// FlatProfile is the identity: the paper's stationary arrivals.
type FlatProfile struct{}

// Name implements RateProfile.
func (FlatProfile) Name() string { return "flat" }

// Multiplier implements RateProfile.
func (FlatProfile) Multiplier(core.Slot, core.Slot) float64 { return 1 }

// DiurnalProfile is a day-shaped sinusoid: quiet at the round's start
// and end, peaking in the middle, averaging 1 across the round so
// aggregate volume matches the flat profile.
//
//	multiplier(t) = 1 + Amplitude · sin(π·(t−1)/(m−1))·π/2 − Amplitude
//
// Amplitude in [0, 1]; 0 is flat.
type DiurnalProfile struct {
	Amplitude float64
}

// Name implements RateProfile.
func (p DiurnalProfile) Name() string { return fmt.Sprintf("diurnal-%.2f", p.Amplitude) }

// Multiplier implements RateProfile.
func (p DiurnalProfile) Multiplier(t, m core.Slot) float64 {
	if m <= 1 {
		return 1
	}
	x := float64(t-1) / float64(m-1) // 0..1 across the round
	// sin(πx) has mean 2/π over [0,1]; scale so the profile's mean is 1.
	wave := math.Sin(math.Pi*x) * math.Pi / 2
	v := 1 + p.Amplitude*(wave-1)
	if v < 0 {
		v = 0
	}
	return v
}

// RushHourProfile has two peaks (morning and evening commute) over the
// round, normalized to mean ≈ 1.
type RushHourProfile struct {
	// Peak is the multiplier at the top of each rush (≥ 1); troughs
	// compensate to keep the mean near 1.
	Peak float64
}

// Name implements RateProfile.
func (p RushHourProfile) Name() string { return fmt.Sprintf("rush-hour-%.1f", p.Peak) }

// Multiplier implements RateProfile.
func (p RushHourProfile) Multiplier(t, m core.Slot) float64 {
	if m <= 1 || p.Peak <= 1 {
		return 1
	}
	x := float64(t-1) / float64(m-1)
	// Two Gaussian bumps at 25% and 75% of the round.
	bump := func(center float64) float64 {
		d := (x - center) / 0.08
		return math.Exp(-d * d / 2)
	}
	raw := bump(0.25) + bump(0.75)
	// Each bump integrates to ≈ 0.08·√(2π) ≈ 0.2 of the range; keep the
	// baseline low enough that the mean stays near 1.
	base := 1 - (p.Peak-1)*0.4
	if base < 0 {
		base = 0
	}
	return base + (p.Peak-base)*raw
}

// GenerateWithProfiles draws a round like Scenario.Generate but
// modulates the phone and task arrival rates with the given profiles
// (nil means flat). It is the workload behind the time-varying examples
// and the robustness experiments.
func (s Scenario) GenerateWithProfiles(seed uint64, phones, tasks RateProfile) (*core.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if phones == nil {
		phones = FlatProfile{}
	}
	if tasks == nil {
		tasks = FlatProfile{}
	}
	rng := NewRNG(seed)
	in := &core.Instance{Slots: s.Slots, Value: s.Value, AllocateAtLoss: s.AllocateAtLoss}
	for t := core.Slot(1); t <= s.Slots; t++ {
		pm := phones.Multiplier(t, s.Slots)
		tm := tasks.Multiplier(t, s.Slots)
		if pm < 0 || tm < 0 {
			return nil, fmt.Errorf("workload: negative profile multiplier at slot %d", t)
		}
		for k := rng.Poisson(s.PhoneRate * pm); k > 0; k-- {
			length := rng.UniformInt(1, 2*s.MeanActiveLength-1)
			depart := t + core.Slot(length) - 1
			if depart > s.Slots {
				depart = s.Slots
			}
			in.Bids = append(in.Bids, core.Bid{
				Phone:     core.PhoneID(len(in.Bids)),
				Arrival:   t,
				Departure: depart,
				Cost:      s.sampleCost(rng),
			})
		}
		for k := rng.Poisson(s.TaskRate * tm); k > 0; k-- {
			in.Tasks = append(in.Tasks, core.Task{
				ID:      core.TaskID(len(in.Tasks)),
				Arrival: t,
			})
		}
	}
	return in, nil
}
