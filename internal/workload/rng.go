// Package workload generates the synthetic auction workloads used by the
// paper's evaluation (Section VI): Poisson smartphone and task arrivals,
// uniformly distributed active-time lengths, and uniformly distributed
// per-task costs, parameterized exactly as the paper's Table I. It also
// provides JSON trace serialization so generated rounds can be archived,
// inspected, and replayed bit-for-bit.
package workload

import "math"

// RNG is a deterministic 64-bit pseudo-random generator (SplitMix64,
// Steele et al. 2014). Unlike math/rand, its stream is fixed by this
// package forever, so archived experiment seeds reproduce identical
// workloads across Go releases. It is not safe for concurrent use; give
// each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. Distinct seeds
// give statistically independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from the current one, advancing
// the parent. Use it to hand child streams to parallel workers.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // negligible bias for n << 2^64
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Poisson samples a Poisson-distributed count with the given mean using
// Knuth's product method for small means and the PTRS transformed
// rejection method's simpler normal-approximation fallback for large
// ones. Means in this codebase are single digits, so the Knuth branch is
// the hot path.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		product := r.Float64()
		n := 0
		for product > limit {
			product *= r.Float64()
			n++
		}
		return n
	}
	// Normal approximation with continuity correction; adequate for the
	// tail configs (mean ≥ 30) used only in stress benchmarks.
	n := int(math.Round(mean + math.Sqrt(mean)*r.Normal()))
	if n < 0 {
		n = 0
	}
	return n
}

// Zipf samples a value in [1, n] with P(k) ∝ 1/k^s via inversion on a
// precomputed CDF (see NewZipf). The heavy-traffic workload uses it for
// activity-window lengths: a mass of hit-and-run phones plus a long
// tail of long-lived ones.
type Zipf struct {
	cdf []float64 // cdf[k-1] = P(X <= k), cdf[n-1] == 1
}

// NewZipf tabulates a Zipf distribution over [1, n] with exponent s > 0.
// Sampling is a binary search over the table, O(log n), allocation-free.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{cdf: make([]float64, n)}
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	z.cdf[n-1] = 1 // guard against rounding shortfall
	return z
}

// Sample draws one Zipf variate in [1, n] using the given generator.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Exponential samples an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal samples a standard normal variate (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
