package chaos

import (
	"net"
	"strings"
	"testing"
	"time"

	"dynacrowd/internal/obs"
)

// pipeConn returns one end of an in-memory duplex with a reader that
// drains the other end, plus a cleanup.
func pipeConn(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	return a
}

// TestCountersTally: each injected fault class increments its counter,
// and Register bridges the tally into a Prometheus scrape.
func TestCountersTally(t *testing.T) {
	k := &Counters{}

	// Scripted disconnect after 2 writes.
	c := WrapConn(pipeConn(t), Plan{CutAfterWrites: 2, Counters: k}, 1)
	if _, err := c.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("two")); err == nil {
		t.Fatal("want injected disconnect on second write")
	}
	if k.Disconnects.Load() != 1 {
		t.Fatalf("disconnects = %d, want 1", k.Disconnects.Load())
	}

	// Certain truncation tears the very first multi-byte frame.
	c = WrapConn(pipeConn(t), Plan{TruncateProb: 1, Counters: k}, 2)
	if _, err := c.Write([]byte("payload")); err == nil {
		t.Fatal("want injected truncate")
	}
	if k.Truncates.Load() != 1 {
		t.Fatalf("truncates = %d, want 1", k.Truncates.Load())
	}

	// Certain latency on one write.
	c = WrapConn(pipeConn(t), Plan{LatencyProb: 1, MaxLatency: time.Microsecond, Counters: k}, 3)
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if k.Latencies.Load() == 0 {
		t.Fatal("latency injection not counted")
	}

	// Stalled read and write, released by Close.
	c = WrapConn(pipeConn(t), Plan{StallReads: true, StallWrites: true, Counters: k}, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Read(make([]byte, 8))
		c.Write([]byte("never"))
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	<-done
	if k.StalledReads.Load() != 1 || k.StalledWrites.Load() != 1 {
		t.Fatalf("stalls = %d reads / %d writes, want 1 each",
			k.StalledReads.Load(), k.StalledWrites.Load())
	}

	reg := obs.NewRegistry()
	k.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dynacrowd_chaos_disconnects_total 1",
		"dynacrowd_chaos_truncates_total 1",
		"dynacrowd_chaos_stalled_reads_total 1",
		"dynacrowd_chaos_stalled_writes_total 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("scrape missing %q:\n%s", want, b.String())
		}
	}

	// Nil counters and nil registration are inert.
	(*Counters)(nil).Register(reg)
	c = WrapConn(pipeConn(t), Plan{TruncateProb: 1}, 5)
	if _, err := c.Write([]byte("payload")); err == nil {
		t.Fatal("want injected truncate")
	}
}
