package chaos

import (
	"net"
	"sync"
	"sync/atomic"
)

// MemListener is an in-memory net.Listener whose connections are
// net.Pipe pairs: no file descriptors, no kernel buffers, fully
// synchronous (a write blocks until the peer reads). It exists for two
// jobs this package serves:
//
//   - Scale harnesses: a 100k-agent load test cannot open 100k TCP
//     sockets on an ordinary fd limit, but 100k pipes are just memory.
//   - Backpressure tests: the synchronous pipe makes "peer stopped
//     reading" propagate to the writer immediately, with no kernel
//     buffer to hide behind — the platform's bounded-queue/slow-consumer
//     machinery is exercised deterministically.
//
// Pipe conns support deadlines, so the platform's write-timeout path
// works over them; compose with WrapConn for fault injection on top.
type MemListener struct {
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
	seq    atomic.Int64
}

// NewMemListener returns a listening MemListener. The backlog bounds
// how many dials may be awaiting Accept; further Dial calls block.
func NewMemListener(backlog int) *MemListener {
	if backlog < 1 {
		backlog = 128
	}
	return &MemListener{
		accept: make(chan net.Conn, backlog),
		done:   make(chan struct{}),
	}
}

// Dial creates a new connection to the listener and returns the client
// half; the server half is delivered to Accept. It fails once the
// listener is closed.
func (l *MemListener) Dial() (net.Conn, error) {
	select {
	case <-l.done:
		// Checked up front: the backlog channel may have free capacity
		// after Close's drain, and the select below would otherwise pick
		// the send arm nondeterministically.
		return nil, net.ErrClosed
	default:
	}
	server, client := net.Pipe()
	id := l.seq.Add(1)
	sc := &memConn{Conn: server, local: memAddr{"mem-listener"}, remote: memAddr{addrName("mem-client", id)}}
	cc := &memConn{Conn: client, local: memAddr{addrName("mem-client", id)}, remote: memAddr{"mem-listener"}}
	select {
	case l.accept <- sc:
		return cc, nil
	case <-l.done:
		server.Close()
		client.Close()
		return nil, net.ErrClosed
	}
}

// Accept implements net.Listener.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener. Connections already established stay
// open; dials parked in the backlog are severed.
func (l *MemListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		for {
			select {
			case c := <-l.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return memAddr{"mem-listener"} }

// memConn decorates a pipe half with distinguishable addresses so
// platform logs ("remote", ...) stay meaningful.
type memConn struct {
	net.Conn
	local, remote memAddr
}

func (c *memConn) LocalAddr() net.Addr  { return c.local }
func (c *memConn) RemoteAddr() net.Addr { return c.remote }

type memAddr struct{ name string }

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return a.name }

// addrName formats "prefix-N" without fmt (dialed on the connect path
// of very large swarms, where fmt.Sprintf is measurable).
func addrName(prefix string, id int64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + id%10)
		if id /= 10; id == 0 {
			break
		}
	}
	return prefix + "-" + string(buf[i:])
}
