// Package chaos provides deterministic, seeded fault injection for
// net.Conn and net.Listener, so the platform's tolerance of dynamic
// smartphones — the paper's defining assumption (§III) — is a testable
// property rather than a hope. A Plan describes which faults to inject
// (added latency, stalled reads or writes, chunked and truncated
// writes, mid-stream disconnects) and with what probability; every
// random decision is drawn from a splitmix64-derived stream seeded by
// Plan.Seed and the connection's accept/dial index, so a fixed seed
// replays the same fault schedule per connection.
//
// The wrappers are transport-agnostic: wrap a test server's listener to
// batter server→agent traffic, wrap an agent's dialed conn to batter
// the uplink, or both. Closing a chaos conn (from either side of the
// wrapper) releases any in-progress stall.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by operations the plan decided to
// fail; wrap-aware tests can errors.Is against it.
var ErrInjected = errors.New("chaos: injected fault")

// Plan configures the faults injected into a connection. The zero
// value injects nothing (a transparent wrapper). Probabilities are per
// operation in [0, 1].
type Plan struct {
	// Seed drives every random decision. Connections derive their own
	// streams from it, so one Plan shared by a listener yields a
	// distinct but reproducible schedule per accepted connection.
	Seed int64

	// LatencyProb is the chance an individual Read or Write sleeps
	// for a uniform duration in (0, MaxLatency] before proceeding.
	LatencyProb float64
	MaxLatency  time.Duration

	// StallReads blocks every Read until the connection is closed,
	// simulating a peer that is alive at the TCP level but never
	// delivers another byte.
	StallReads bool

	// StallWrites blocks every Write until the connection is closed,
	// simulating a peer that stops draining its receive window (the
	// classic slow consumer).
	StallWrites bool

	// ChunkBytes > 0 splits each Write into chunks of at most this
	// many bytes (with a latency roll between chunks), stressing
	// message reassembly across TCP segmentation.
	ChunkBytes int

	// TruncateProb is the chance a Write delivers only a strict prefix
	// of its payload and then cuts the connection — a torn frame.
	TruncateProb float64

	// DisconnectProb is the chance the connection is cut immediately
	// after a Write delivers in full — a clean mid-stream hangup.
	DisconnectProb float64

	// CutAfterWrites, when > 0, deterministically cuts the connection
	// after exactly that many successful Writes, independent of any
	// probability roll. Useful for scripting a disconnect at a known
	// point in the message flow.
	CutAfterWrites int

	// ArmAfterBytes delays every cutting fault (TruncateProb,
	// DisconnectProb, CutAfterWrites) until at least this many bytes
	// have been written, so a handshake can complete before the
	// connection becomes vulnerable.
	ArmAfterBytes int64

	// Counters, when non-nil, tallies every fault the plan injects,
	// across all connections sharing the plan. See Counters.Register
	// for the Prometheus bridge.
	Counters *Counters
}

// splitmix64 is the standard 64-bit mix used to derive independent
// child seeds from a master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func childSeed(seed int64, index int64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ uint64(index)))
}

// Conn is a net.Conn with the Plan's faults injected. Create one with
// WrapConn, or implicitly via Listener / Dialer.
type Conn struct {
	net.Conn
	plan Plan

	mu      sync.Mutex // guards rng, written, writes, cut (write path)
	rng     *rand.Rand
	written int64
	writes  int
	cut     bool

	// The read path draws from its own stream under its own lock, so a
	// Read never waits behind a Write blocked on the transport — real
	// net.Conns are full duplex, and the wrapper must be too.
	rmu  sync.Mutex
	rrng *rand.Rand

	closeOnce sync.Once
	done      chan struct{} // closed on Close; releases stalls
}

// WrapConn wraps c with the plan's faults, drawing randomness from the
// stream derived for connection index (use distinct indexes for
// distinct connections under one seed).
func WrapConn(c net.Conn, plan Plan, index int64) *Conn {
	child := childSeed(plan.Seed, index)
	return &Conn{
		Conn: c,
		plan: plan,
		rng:  rand.New(rand.NewSource(child)),
		rrng: rand.New(rand.NewSource(childSeed(child, 1))),
		done: make(chan struct{}),
	}
}

// Close closes the underlying connection and releases any stalled
// Read/Write. Safe to call more than once.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.Conn.Close()
	})
	return err
}

// maybeSleep rolls the latency fault for the write path. Called with
// c.mu held; the sleep itself releases the lock so a concurrent Close
// (or another Write) is not serialized behind an injected delay.
func (c *Conn) maybeSleep() {
	if c.plan.LatencyProb <= 0 || c.plan.MaxLatency <= 0 {
		return
	}
	if c.rng.Float64() >= c.plan.LatencyProb {
		return
	}
	c.plan.Counters.noteLatency()
	d := time.Duration(1 + c.rng.Int63n(int64(c.plan.MaxLatency)))
	c.mu.Unlock()
	defer c.mu.Lock()
	select {
	case <-time.After(d):
	case <-c.done:
	}
}

// Read implements net.Conn. It shares no lock with Write: a Read may
// proceed (and sleep, and deliver) while a Write is blocked on the
// transport, exactly as on a real full-duplex connection.
func (c *Conn) Read(b []byte) (int, error) {
	if c.plan.StallReads {
		c.plan.Counters.noteStalledRead()
		<-c.done
		return 0, errClosed("read")
	}
	if c.plan.LatencyProb > 0 && c.plan.MaxLatency > 0 {
		c.rmu.Lock()
		var d time.Duration
		if c.rrng.Float64() < c.plan.LatencyProb {
			d = time.Duration(1 + c.rrng.Int63n(int64(c.plan.MaxLatency)))
		}
		c.rmu.Unlock()
		if d > 0 {
			c.plan.Counters.noteLatency()
			select {
			case <-time.After(d):
			case <-c.done:
			}
		}
	}
	return c.Conn.Read(b)
}

// Write implements net.Conn. A truncating fault delivers a strict
// prefix and then cuts the connection; a disconnect fault delivers the
// payload in full first. Both count as write errors to the caller.
func (c *Conn) Write(b []byte) (int, error) {
	if c.plan.StallWrites {
		c.plan.Counters.noteStalledWrite()
		<-c.done
		return 0, errClosed("write")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, errClosed("write")
	}
	c.maybeSleep()

	armed := c.written >= c.plan.ArmAfterBytes
	if armed && len(b) > 1 && c.plan.TruncateProb > 0 && c.rng.Float64() < c.plan.TruncateProb {
		n := 1 + c.rng.Intn(len(b)-1)
		n, _ = c.Conn.Write(b[:n])
		c.written += int64(n)
		c.plan.Counters.noteTruncate()
		c.cutLocked()
		return n, errInjected("truncated write after %d bytes", n)
	}

	n, err := c.writeChunked(b)
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	c.writes++
	cut := c.plan.CutAfterWrites > 0 && c.writes >= c.plan.CutAfterWrites
	if armed && (cut || (c.plan.DisconnectProb > 0 && c.rng.Float64() < c.plan.DisconnectProb)) {
		c.plan.Counters.noteDisconnect()
		c.cutLocked()
		return n, errInjected("disconnect after write %d", c.writes)
	}
	return n, nil
}

// writeChunked forwards b to the underlying conn, split into
// ChunkBytes-sized pieces when configured. Called with c.mu held.
func (c *Conn) writeChunked(b []byte) (int, error) {
	if c.plan.ChunkBytes <= 0 || len(b) <= c.plan.ChunkBytes {
		return c.Conn.Write(b)
	}
	total := 0
	for len(b) > 0 {
		end := c.plan.ChunkBytes
		if end > len(b) {
			end = len(b)
		}
		n, err := c.Conn.Write(b[:end])
		total += n
		if err != nil {
			return total, err
		}
		b = b[end:]
		c.maybeSleep()
	}
	return total, nil
}

// cutLocked severs the underlying transport. Called with c.mu held.
func (c *Conn) cutLocked() {
	c.cut = true
	c.closeOnce.Do(func() {
		close(c.done)
		c.Conn.Close()
	})
}

func errInjected(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInjected}, args...)...)
}

func errClosed(op string) error {
	return &net.OpError{Op: op, Err: net.ErrClosed}
}

// Listener wraps a net.Listener so every accepted connection carries
// the plan's faults, each with its own deterministic random stream.
type Listener struct {
	net.Listener
	plan Plan
	next atomic.Int64
}

// Wrap returns a fault-injecting listener over ln.
func Wrap(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.plan, l.next.Add(1)), nil
}

// Dialer dials TCP connections wrapped with the plan's faults; each
// dial gets the next deterministic stream. The zero value of everything
// but Plan is ready to use.
type Dialer struct {
	Plan    Plan
	Timeout time.Duration // default 5s
	next    atomic.Int64
}

// Dial connects to addr and wraps the connection.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return WrapConn(c, d.Plan, d.next.Add(1)), nil
}
