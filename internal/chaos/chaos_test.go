package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory connection with the local
// end chaos-wrapped.
func pipePair(plan Plan, index int64) (*Conn, net.Conn) {
	local, remote := net.Pipe()
	return WrapConn(local, plan, index), remote
}

// TestTransparentByDefault: a zero Plan forwards bytes unchanged.
func TestTransparentByDefault(t *testing.T) {
	c, remote := pipePair(Plan{}, 1)
	defer c.Close()
	go func() {
		c.Write([]byte("hello\n"))
	}()
	buf := make([]byte, 16)
	n, err := remote.Read(buf)
	if err != nil || string(buf[:n]) != "hello\n" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

// TestDeterministicSchedule: the same seed and index produce the same
// fault decisions; a different index produces an independent stream.
func TestDeterministicSchedule(t *testing.T) {
	run := func(index int64) []bool {
		plan := Plan{Seed: 7, DisconnectProb: 0.5}
		c, remote := pipePair(plan, index)
		defer c.Close()
		go io.Copy(io.Discard, remote)
		var cuts []bool
		for i := 0; i < 20; i++ {
			_, err := c.Write([]byte("x"))
			cuts = append(cuts, err != nil)
			if err != nil {
				break
			}
		}
		return cuts
	}
	a, b, other := run(3), run(3), run(4)
	if len(a) != len(b) {
		t.Fatalf("same seed+index diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+index diverged at op %d", i)
		}
	}
	if len(a) == len(other) {
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
			}
		}
		if same {
			t.Log("warning: indexes 3 and 4 coincided (possible but unlikely)")
		}
	}
}

// TestCutAfterWrites: the connection dies after exactly N writes.
func TestCutAfterWrites(t *testing.T) {
	c, remote := pipePair(Plan{CutAfterWrites: 3}, 1)
	go io.Copy(io.Discard, remote)
	for i := 1; i <= 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("ok")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3 err = %v, want injected cut", err)
	}
	if _, err := c.Write([]byte("dead")); err == nil {
		t.Fatal("write after cut succeeded")
	}
}

// TestArmAfterBytes: cutting faults hold off until the handshake
// byte budget is spent.
func TestArmAfterBytes(t *testing.T) {
	c, remote := pipePair(Plan{CutAfterWrites: 1, ArmAfterBytes: 10}, 1)
	go io.Copy(io.Discard, remote)
	// 4 bytes written: below the arming threshold, no cut.
	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatalf("unarmed write failed: %v", err)
	}
	// 12 bytes total: past the threshold, the cut fires.
	if _, err := c.Write([]byte("efghijkl")); err != nil {
		t.Fatalf("arming write failed: %v", err)
	}
	if _, err := c.Write([]byte("mnop")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write err = %v, want injected cut", err)
	}
}

// TestTruncateDeliversStrictPrefix: a truncating write hands the peer
// some but not all bytes, then the connection is dead.
func TestTruncateDeliversStrictPrefix(t *testing.T) {
	c, remote := pipePair(Plan{Seed: 1, TruncateProb: 1}, 1)
	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&got, remote)
		close(done)
	}()
	payload := []byte("0123456789abcdef")
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("delivered %d bytes, want strict prefix of %d", n, len(payload))
	}
	<-done
	if got.Len() != n || !bytes.Equal(got.Bytes(), payload[:n]) {
		t.Fatalf("peer saw %q, want %q", got.Bytes(), payload[:n])
	}
}

// TestChunkedWritesReassemble: chunking changes segmentation, never
// content.
func TestChunkedWritesReassemble(t *testing.T) {
	c, remote := pipePair(Plan{ChunkBytes: 3}, 1)
	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(&got, remote)
	}()
	msg := []byte(`{"type":"welcome","phone":3}` + "\n")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	c.Close()
	wg.Wait()
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("peer saw %q, want %q", got.Bytes(), msg)
	}
}

// TestStallReadsReleasedByClose: a stalled Read does not hang forever —
// Close releases it.
func TestStallReadsReleasedByClose(t *testing.T) {
	c, remote := pipePair(Plan{StallReads: true}, 1)
	defer remote.Close()
	go remote.Write([]byte("you never see this\n"))
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 64))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("released read returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the stalled read")
	}
}

// TestStallWritesReleasedByClose mirrors the read stall for writes.
func TestStallWritesReleasedByClose(t *testing.T) {
	c, remote := pipePair(Plan{StallWrites: true}, 1)
	defer remote.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("stuck"))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	c.Close()
	if err := <-errCh; err == nil {
		t.Fatal("released write returned nil error")
	}
}

// TestLatencyInjection: with LatencyProb 1 every op takes at least a
// measurable delay (the uniform draw is over (0, max]).
func TestLatencyInjection(t *testing.T) {
	c, remote := pipePair(Plan{Seed: 5, LatencyProb: 1, MaxLatency: 20 * time.Millisecond}, 1)
	defer c.Close()
	go io.Copy(io.Discard, remote)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Write([]byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed == 0 {
		t.Fatal("no latency injected")
	}
}

// TestListenerWrapsTCP: an end-to-end TCP accept path with a scripted
// cut, proving the listener derives per-connection streams.
func TestListenerWrapsTCP(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(raw, Plan{Seed: 11, CutAfterWrites: 2})
	defer ln.Close()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("one\n"))
		conn.Write([]byte("two\n")) // cut fires here
		conn.Write([]byte("three\n"))
	}()

	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	data, _ := io.ReadAll(client)
	if string(data) != "one\ntwo\n" {
		t.Fatalf("client saw %q, want the first two lines then a cut", data)
	}
}

// TestDialerWrapsOutbound: the dialer injects faults on the agent side.
func TestDialerWrapsOutbound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		data, _ := io.ReadAll(conn)
		got <- data
	}()

	d := &Dialer{Plan: Plan{Seed: 3, CutAfterWrites: 1}}
	conn, err := d.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("only\n")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected cut on first write", err)
	}
	if data := <-got; string(data) != "only\n" {
		t.Fatalf("server saw %q", data)
	}
}
