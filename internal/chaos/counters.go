package chaos

import (
	"sync/atomic"

	"dynacrowd/internal/obs"
)

// Counters tallies the faults a Plan actually injected, summed across
// every connection sharing the Plan (the fields are atomics, so wrapped
// connections on different goroutines report without coordination).
// Attach one via Plan.Counters; a nil pointer disables counting.
type Counters struct {
	Latencies     atomic.Uint64 // latency rolls that fired and slept
	StalledReads  atomic.Uint64 // Reads parked until connection close
	StalledWrites atomic.Uint64 // Writes parked until connection close
	Truncates     atomic.Uint64 // torn frames: prefix delivered, then cut
	Disconnects   atomic.Uint64 // clean cuts (probabilistic or scripted)
}

// Register bridges the tally into an obs registry as
// dynacrowd_chaos_*_total counters. Nil receiver or registry is a no-op;
// registration is idempotent, so re-wrapping listeners under one
// registry is safe.
func (k *Counters) Register(reg *obs.Registry) {
	if k == nil || reg == nil {
		return
	}
	bridge := func(name, help string, a *atomic.Uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(a.Load()) })
	}
	bridge("dynacrowd_chaos_latency_injections_total",
		"Injected latency sleeps that fired on a Read or Write.", &k.Latencies)
	bridge("dynacrowd_chaos_stalled_reads_total",
		"Reads parked until connection close by StallReads.", &k.StalledReads)
	bridge("dynacrowd_chaos_stalled_writes_total",
		"Writes parked until connection close by StallWrites.", &k.StalledWrites)
	bridge("dynacrowd_chaos_truncates_total",
		"Torn frames: a strict prefix delivered, then the connection cut.", &k.Truncates)
	bridge("dynacrowd_chaos_disconnects_total",
		"Clean mid-stream cuts (probabilistic or scripted via CutAfterWrites).", &k.Disconnects)
}

// The nil-safe per-fault hooks the connection wrapper calls.
func (k *Counters) noteLatency() {
	if k != nil {
		k.Latencies.Add(1)
	}
}

func (k *Counters) noteStalledRead() {
	if k != nil {
		k.StalledReads.Add(1)
	}
}

func (k *Counters) noteStalledWrite() {
	if k != nil {
		k.StalledWrites.Add(1)
	}
}

func (k *Counters) noteTruncate() {
	if k != nil {
		k.Truncates.Add(1)
	}
}

func (k *Counters) noteDisconnect() {
	if k != nil {
		k.Disconnects.Add(1)
	}
}
