module dynacrowd

go 1.22
