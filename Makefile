GO ?= go

.PHONY: all check vet build test race bench clean

all: check

# check is the tier-1 gate: everything CI runs, in order.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
