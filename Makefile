GO ?= go

# bench knobs: BENCHTIME=2s for stable numbers, BENCH_SECTION=baseline
# to record a pre-change reference into the trajectory file.
BENCHTIME ?= 1x
BENCH_SECTION ?= current
BENCH_OUT ?= BENCH_PR10.json

.PHONY: all check vet build test race race-hot soak fuzz-smoke diff-sweep dist-diff dist-bench wire-diff budget-audit budget-bench loadtest-smoke loadtest bench bench-merge staticcheck profile obs-demo clean

all: check

# check is the tier-1 gate: everything CI runs, in order. race-hot runs
# first so races on the mechanism/platform hot paths (pooled scratch,
# concurrent sessions) fail fast before the full-tree race pass.
# diff-sweep re-runs the offline engine differential battery verbosely
# and fails if the sweep was filtered out or skipped, so the fast
# offline engine can never silently drift from the Hungarian+VCG oracle;
# dist-diff does the same for the distributed engine's over-the-wire
# equivalence evidence.
check: vet build test race-hot race diff-sweep dist-diff wire-diff budget-audit

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot focuses the race detector on the packages that share scratch
# buffers across goroutines: the payment engines, the sharded auction's
# fan-out/merge, the platform server, and the lock-free observability
# primitives.
race-hot:
	$(GO) test -race -count=1 ./internal/core/... ./internal/shard/... ./internal/dshard/... ./internal/platform/... ./internal/obs/... ./internal/matching/... ./internal/budget/...

# soak exercises the unreliable-winner pipeline under the race detector:
# the chaos soak (realization faults composed with transport faults,
# conservation invariants), the sequential-vs-sharded completion
# differential, and a short fuzz of completion-event orderings. See
# docs/PLATFORM.md "Failure model".
soak:
	$(GO) test -race -count=1 -run TestSoakUnreliableWinnersUnderChaos -v ./internal/platform/
	$(GO) test -race -count=1 -run TestShardCompletionParity ./internal/shard/
	$(GO) test -race -count=1 -run '^$$' -fuzz FuzzShardCompletionOrder -fuzztime 10s ./internal/shard/

# fuzz-smoke gives the offline-VCG differential fuzzers a short,
# deterministic budget: FuzzOfflineVCG cross-checks the fast interval
# engine against the Hungarian+VCG oracle (welfare, payments, IR),
# FuzzIntervalSolver pins the augmenting-path matcher to the dense
# Hungarian optimum on arbitrary interval instances, and the protocol
# fuzzers feed arbitrary bytes to the client-message and shard-RPC
# frame decoders (malformed input must error, never panic or hang).
fuzz-smoke:
	$(GO) test -race -count=1 -run '^$$' -fuzz FuzzOfflineVCG -fuzztime 10s ./internal/core/
	$(GO) test -race -count=1 -run '^$$' -fuzz FuzzIntervalSolver -fuzztime 5s ./internal/matching/
	$(GO) test -race -count=1 -run '^$$' -fuzz FuzzBinaryFrame -fuzztime 10s ./internal/protocol/
	$(GO) test -race -count=1 -run '^$$' -fuzz FuzzShardRPCFrame -fuzztime 10s ./internal/protocol/
	$(GO) test -race -count=1 -run '^$$' -fuzz FuzzBudgetSnapshot -fuzztime 10s ./internal/budget/

# wire-diff proves the binary framing is transport dressing only: the
# same scripted multi-round auction (completions, defaults, clawbacks)
# replayed over all-JSON, all-binary, and mixed swarms must produce a
# bit-identical outcome. The grep fails the target if the differential
# was filtered out or skipped.
wire-diff:
	$(GO) test -count=1 -run TestWireDifferentialSwarm -v ./internal/platform/ \
		| tee /tmp/dynacrowd-wire-diff.out
	grep -q -- '--- PASS: TestWireDifferentialSwarm' /tmp/dynacrowd-wire-diff.out

# budget-audit is the truthfulness gate for the budgeted mechanism
# family: the Fig-5-style counterexample (naive budget truncation is
# manipulable; both budget engines are not), then the exhaustive
# deviation audit — every phone, every misreport, five seeded rounds per
# engine and budget level — asserting zero positive-gain deviations,
# individual rationality, and sum-of-payments <= B on every audited
# instance. The grep guards fail the target if either battery is
# filtered out or skipped.
budget-audit:
	$(GO) test -count=1 -run 'TestNaiveTruncatedNotTruthful|TestBudgetEnginesPassCounterexample' -v ./internal/budget/ \
		| tee /tmp/dynacrowd-budget-counterexample.out
	grep -q -- '--- PASS: TestNaiveTruncatedNotTruthful' /tmp/dynacrowd-budget-counterexample.out
	grep -q -- '--- PASS: TestBudgetEnginesPassCounterexample' /tmp/dynacrowd-budget-counterexample.out
	$(GO) test -count=1 -run TestBudgetAuditCampaign -v ./internal/budget/ \
		| tee /tmp/dynacrowd-budget-audit.out
	grep -q -- '--- PASS: TestBudgetAuditCampaign' /tmp/dynacrowd-budget-audit.out

# budget-bench records the budgeted engines' per-round throughput
# against the unbudgeted baseline (counterfactual critical-value
# pricing is the deliberate cost; see docs/BUDGET.md) plus the
# welfare-per-budget sweep across the workload zoo.
budget-bench:
	$(GO) test -bench BenchmarkBudgetedSlot -benchtime $(BENCHTIME) -run '^$$' ./internal/budget/ \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section budget-slot
	$(GO) test -bench BenchmarkBudgetSweep -benchtime 1x -run '^$$' . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section budget-sweep

# loadtest-smoke is the fast gate for the load harness (docs/LOADTEST.md):
# a 5k-agent swarm over in-memory pipes in both wire formats, with a
# conservative sustained-throughput floor so a fan-out regression that
# halves delivery rate fails loudly even on a busy CI box.
loadtest-smoke:
	$(GO) run ./cmd/crowdsim -load -load-agents 5000 -load-ticks 30 -load-min-msgs 50000 >/dev/null

# loadtest is the full recorded run: the 100k-agent sustained swarm plus
# a hot-cache 2k-agent run (where throughput is codec-bound rather than
# scheduler-bound — that is where the binary framing's >=3x shows),
# both appended to the trajectory file.
loadtest:
	$(GO) run ./cmd/crowdsim -load -load-agents 2000 -load-ticks 50 \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section load-2k
	$(GO) run ./cmd/crowdsim -load -load-agents 100000 -load-ticks 50 \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section load-100k

# diff-sweep proves the oracle-differential battery actually ran: the
# grep fails the target unless the sweep's PASS line is in the verbose
# output, so a -run filter, a skip, or a renamed test cannot silently
# drop the offline engines' equivalence evidence from the gate.
diff-sweep:
	$(GO) test -count=1 -run TestOfflineDifferentialSweep -v ./internal/core/ \
		| tee /tmp/dynacrowd-diff-sweep.out
	grep -q -- '--- PASS: TestOfflineDifferentialSweep' /tmp/dynacrowd-diff-sweep.out

# dist-diff proves the distributed coordinator's over-the-wire merge is
# transport dressing only: real shard-server processes (in-memory
# transport), clean and chaos-battered, must reproduce the sequential
# engine's allocations, payments, and welfare bit for bit across the
# seeded sweep and the completion-lifecycle scripts. Same grep guard as
# diff-sweep: a filtered or skipped sweep fails the gate.
dist-diff:
	$(GO) test -count=1 -run TestDistributedDifferentialSweep -v ./internal/dshard/ \
		| tee /tmp/dynacrowd-dist-diff.out
	grep -q -- '--- PASS: TestDistributedDifferentialSweep' /tmp/dynacrowd-dist-diff.out

# dist-bench records the distributed engine's slot throughput over both
# the in-memory and TCP-loopback transports into the trajectory file,
# next to the in-process BenchmarkShardedSlot numbers it is compared
# against in docs/DISTRIBUTED.md.
dist-bench:
	$(GO) test -bench BenchmarkDistributedSlot -benchtime $(BENCHTIME) -run '^$$' ./internal/dshard/ \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section dist-slot

# staticcheck runs honnef.co/go/tools if it is installed; the tier-1
# gate stays dependency-free, so a missing binary is a skip, not a
# failure.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# bench runs every benchmark and records the results (ns/op plus the
# figure benchmarks' welfare/sigma metrics) as a section of the JSON
# trajectory file, printing speedups against the stored baseline.
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run='^$$' ./... \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section $(BENCH_SECTION)

# bench-merge combines every per-PR trajectory file into one report so
# the full performance history is diffable in a single place.
bench-merge:
	$(GO) run ./cmd/benchjson -merge $$(ls BENCH_PR*.json | paste -sd, -) -out BENCH_ALL.json

# obs-demo runs a short live platform round with observability on and
# scrapes its Prometheus endpoint, demonstrating the introspection
# surface end to end (see docs/OBSERVABILITY.md).
OBS_ADDR ?= 127.0.0.1:7393
obs-demo:
	$(GO) build -o /tmp/crowd-platform-demo ./cmd/crowd-platform
	/tmp/crowd-platform-demo -addr 127.0.0.1:0 -slots 10 -slot-every 100ms \
		-task-rate 2 -obs-addr $(OBS_ADDR) -trace /tmp/crowd-platform-demo.trace.jsonl & \
	pid=$$!; \
	sleep 0.6; \
	for i in 1 2 3 4 5; do \
		curl -fsS http://$(OBS_ADDR)/metrics >/tmp/crowd-platform-demo.metrics && break; \
		sleep 0.3; \
	done; \
	grep -E '^dynacrowd_(platform_(slot|welfare_total|paid_total)|core_slot_alloc_seconds_count|trace_events_total)' \
		/tmp/crowd-platform-demo.metrics; \
	curl -fsS "http://$(OBS_ADDR)/debug/rounds?n=5" | head -c 600; echo; \
	wait $$pid
	@echo "---- trace tail ----"
	@tail -n 3 /tmp/crowd-platform-demo.trace.jsonl

# profile captures CPU and heap profiles of a representative sweep;
# inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/crowdsim -figure fig6 -quick -cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "wrote cpu.pprof and mem.pprof"

clean:
	$(GO) clean ./...
