GO ?= go

# bench knobs: BENCHTIME=2s for stable numbers, BENCH_SECTION=baseline
# to record a pre-change reference into the trajectory file.
BENCHTIME ?= 1x
BENCH_SECTION ?= current
BENCH_OUT ?= BENCH_PR3.json

.PHONY: all check vet build test race race-hot bench profile clean

all: check

# check is the tier-1 gate: everything CI runs, in order. race-hot runs
# first so races on the mechanism/platform hot paths (pooled scratch,
# concurrent sessions) fail fast before the full-tree race pass.
check: vet build test race-hot race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot focuses the race detector on the packages that share scratch
# buffers across goroutines: the payment engines and the platform server.
race-hot:
	$(GO) test -race -count=1 ./internal/core/... ./internal/platform/...

# bench runs every benchmark and records the results (ns/op plus the
# figure benchmarks' welfare/sigma metrics) as a section of the JSON
# trajectory file, printing speedups against the stored baseline.
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run='^$$' ./... \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section $(BENCH_SECTION)

# profile captures CPU and heap profiles of a representative sweep;
# inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/crowdsim -figure fig6 -quick -cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "wrote cpu.pprof and mem.pprof"

clean:
	$(GO) clean ./...
