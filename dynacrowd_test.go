package dynacrowd_test

import (
	"fmt"
	"testing"

	"dynacrowd"
)

func TestFacadeQuickstart(t *testing.T) {
	scn := dynacrowd.DefaultScenario()
	scn.Slots = 12
	in, err := scn.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	on, err := dynacrowd.RunOnline(in)
	if err != nil {
		t.Fatal(err)
	}
	off, err := dynacrowd.RunOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := dynacrowd.OptimalWelfare(in)
	if err != nil {
		t.Fatal(err)
	}
	if off.Welfare != opt {
		t.Fatalf("offline welfare %g != optimum %g", off.Welfare, opt)
	}
	if on.Welfare > opt || on.Welfare < opt/2 {
		t.Fatalf("online welfare %g outside [opt/2, opt] = [%g, %g]", on.Welfare, opt/2, opt)
	}
}

func TestFacadeStreaming(t *testing.T) {
	oa, err := dynacrowd.NewOnlineAuction(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oa.Step([]dynacrowd.StreamBid{{Departure: 2, Cost: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %v", res.Assignments)
	}
}

func TestFacadeAudit(t *testing.T) {
	in := &dynacrowd.Instance{
		Slots: 2, Value: 10,
		Bids: []dynacrowd.Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 2},
			{Phone: 1, Arrival: 1, Departure: 2, Cost: 5},
		},
		Tasks: []dynacrowd.Task{{ID: 0, Arrival: 1}},
	}
	results, err := dynacrowd.Audit(dynacrowd.NewOnline(), in, dynacrowd.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Gain() > 1e-9 {
			t.Fatalf("phone %d gains %g", r.Phone, r.Gain())
		}
	}
}

func TestFacadePlatform(t *testing.T) {
	srv, err := dynacrowd.ListenPlatform("127.0.0.1:0", dynacrowd.PlatformConfig{Slots: 2, Value: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	agent, err := dynacrowd.DialPlatform(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if err := agent.SubmitBid("demo", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Tick(1); err != nil {
		t.Fatal(err)
	}
	if srv.Outcome().Allocation.NumServed() != 1 {
		t.Fatal("platform did not allocate the task")
	}
}

// ExampleRunOnline demonstrates the quickstart flow.
func ExampleRunOnline() {
	in := &dynacrowd.Instance{
		Slots: 1, Value: 10,
		Bids: []dynacrowd.Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 2},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 6},
		},
		Tasks: []dynacrowd.Task{{ID: 0, Arrival: 1}},
	}
	out, _ := dynacrowd.RunOnline(in)
	fmt.Printf("welfare=%.0f winner=%d payment=%.0f\n",
		out.Welfare, out.Allocation.ByTask[0], out.Payments[0])
	// Output: welfare=8 winner=0 payment=6
}

func TestFacadeMarket(t *testing.T) {
	scn := dynacrowd.DefaultScenario()
	scn.Slots = 10
	res, err := dynacrowd.RunMarket(dynacrowd.MarketConfig{
		Rounds:            3,
		Scenario:          scn,
		Seed:              1,
		ReturnProbability: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 || res.MeanWelfare() <= 0 {
		t.Fatalf("market result: %+v", res)
	}
}

func TestFacadeCampaign(t *testing.T) {
	scn := dynacrowd.DefaultScenario()
	scn.Slots = 8
	in, err := scn.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynacrowd.RunCampaign(8, 30,
		[]dynacrowd.SensingQuery{{ID: 0, Region: "Downtown", From: 1, To: 8}},
		in.Bids, dynacrowd.NewOnline(), dynacrowd.NewGroundTruth(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCoverage <= 0 || len(res.Answers) != 1 {
		t.Fatalf("campaign result: %+v", res)
	}
}
