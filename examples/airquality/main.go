// Airquality: heterogeneous sensing with the typed-task extension. An
// environmental agency buys three kinds of measurements — noise (any
// phone), air quality (needs a plug-in PM2.5 sensor), and sky photos
// (needs a usable camera) — and not every phone can serve every kind.
//
// The example contrasts the generalized offline VCG and online greedy
// mechanisms on the same heterogeneous round, then demonstrates the
// regime the paper's 1/2-competitive guarantee does NOT survive:
// strongly unequal task values, where myopic greedy burns a scarce
// multi-sensor phone on a cheap task.
//
//	go run ./examples/airquality
package main

import (
	"fmt"
	"log"

	"dynacrowd/internal/core"
	"dynacrowd/internal/typed"
	"dynacrowd/internal/workload"
)

const (
	kindNoise typed.Kind = iota
	kindAir
	kindPhoto
)

var kindNames = []string{"noise", "air", "photo"}

func main() {
	rng := workload.NewRNG(21)

	// Build a day-long round: 12 slots, tasks of mixed kinds. Values
	// reflect the agency's priorities: air-quality readings are scarce
	// and precious.
	in := &typed.Instance{
		Slots:  12,
		Values: []float64{12, 45, 20}, // noise, air, photo
	}
	// 18 phones with realistic capability mixes: every phone hears
	// noise, 1 in 4 carries a PM2.5 dongle, 3 in 4 have a usable camera.
	for i := 0; i < 18; i++ {
		caps := typed.Caps(kindNoise)
		if rng.Intn(4) == 0 {
			caps |= typed.Caps(kindAir)
		}
		if rng.Intn(4) != 0 {
			caps |= typed.Caps(kindPhoto)
		}
		arrive := core.Slot(1 + rng.Intn(10))
		depart := arrive + core.Slot(rng.Intn(4))
		if depart > in.Slots {
			depart = in.Slots
		}
		in.Bids = append(in.Bids, typed.Bid{
			Phone: core.PhoneID(i), Arrival: arrive, Departure: depart,
			Cost: rng.Uniform(2, 10), Caps: caps,
		})
	}
	// Tasks: mostly noise, some photos, a few precious air readings.
	kindFor := func() typed.Kind {
		switch r := rng.Intn(10); {
		case r < 5:
			return kindNoise
		case r < 8:
			return kindPhoto
		default:
			return kindAir
		}
	}
	for slot := core.Slot(1); slot <= in.Slots; slot++ {
		for n := rng.Poisson(1.2); n > 0; n-- {
			in.Tasks = append(in.Tasks, typed.Task{
				ID: core.TaskID(len(in.Tasks)), Arrival: slot, Kind: kindFor(),
			})
		}
	}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("round: %d phones, %d tasks over %d slots\n", len(in.Bids), len(in.Tasks), in.Slots)
	counts := map[typed.Kind]int{}
	for _, task := range in.Tasks {
		counts[task.Kind]++
	}
	for k, name := range kindNames {
		fmt.Printf("  %-6s value %2.0f, %d tasks\n", name, in.Values[k], counts[typed.Kind(k)])
	}

	online, err := (&typed.OnlineMechanism{}).Run(in)
	if err != nil {
		log.Fatal(err)
	}
	offline, err := (&typed.OfflineMechanism{}).Run(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %10s\n", "", "online", "offline-VCG")
	fmt.Printf("%-22s %10.1f %10.1f\n", "social welfare", online.Welfare, offline.Welfare)
	fmt.Printf("%-22s %10d %10d\n", "tasks served", served(online), served(offline))
	fmt.Printf("%-22s %10.1f %10.1f\n", "total payment", total(online.Payments), total(offline.Payments))

	fmt.Println("\nonline assignments (task kind -> phone, cost, payment):")
	for k, p := range online.ByTask {
		if p == core.NoPhone {
			fmt.Printf("  %-6s slot %2d  UNSERVED (no capable phone free)\n",
				kindNames[in.Tasks[k].Kind], in.Tasks[k].Arrival)
			continue
		}
		fmt.Printf("  %-6s slot %2d  phone %-2d cost %5.2f paid %6.2f\n",
			kindNames[in.Tasks[k].Kind], in.Tasks[k].Arrival, p,
			in.Bids[p].Cost, online.Payments[p])
	}

	// The myopia trap: with strongly unequal values, greedy can burn the
	// only air-capable phone on a noise reading.
	trap := &typed.Instance{
		Slots:  2,
		Values: []float64{10, 100, 20},
		Bids: []typed.Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 1, Caps: typed.Caps(kindNoise, kindAir)},
		},
		Tasks: []typed.Task{
			{ID: 0, Arrival: 1, Kind: kindNoise},
			{ID: 1, Arrival: 2, Kind: kindAir},
		},
	}
	trapOn, err := (&typed.OnlineMechanism{}).Run(trap)
	if err != nil {
		log.Fatal(err)
	}
	trapOff, err := (&typed.OfflineMechanism{}).Run(trap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmyopia trap: online welfare %.0f vs offline %.0f (ratio %.2f — the 1/2\n",
		trapOn.Welfare, trapOff.Welfare, trapOn.Welfare/trapOff.Welfare)
	fmt.Println("guarantee needs equal task values; see internal/typed tests)")
}

func served(o *typed.Outcome) int {
	n := 0
	for _, p := range o.ByTask {
		if p != core.NoPhone {
			n++
		}
	}
	return n
}

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
