// Quickstart: build a small auction round by hand, run both truthful
// mechanisms on it, and print the allocations, payments, and phone
// utilities side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynacrowd"
)

func main() {
	// One round of five slots, each completed task worth ν = 20 to the
	// platform. Seven phones with private active windows and costs (this
	// is the worked example from the paper's Fig. 4), one task per slot.
	in := &dynacrowd.Instance{
		Slots: 5,
		Value: 20,
		Bids: []dynacrowd.Bid{
			{Phone: 0, Arrival: 2, Departure: 5, Cost: 3},
			{Phone: 1, Arrival: 1, Departure: 4, Cost: 5},
			{Phone: 2, Arrival: 3, Departure: 5, Cost: 11},
			{Phone: 3, Arrival: 4, Departure: 5, Cost: 9},
			{Phone: 4, Arrival: 2, Departure: 2, Cost: 4},
			{Phone: 5, Arrival: 3, Departure: 5, Cost: 8},
			{Phone: 6, Arrival: 1, Departure: 3, Cost: 6},
		},
		Tasks: []dynacrowd.Task{
			{ID: 0, Arrival: 1}, {ID: 1, Arrival: 2}, {ID: 2, Arrival: 3},
			{ID: 3, Arrival: 4}, {ID: 4, Arrival: 5},
		},
	}

	for _, mech := range []dynacrowd.Mechanism{dynacrowd.NewOnline(), dynacrowd.NewOffline()} {
		out, err := mech.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", mech.Name())
		fmt.Printf("social welfare: %.1f   total paid: %.1f   overpayment ratio: %.3f\n",
			out.Welfare, out.TotalPayment(), out.OverpaymentRatio(in))
		for _, a := range out.Allocation.Assignments() {
			bid := in.Bids[a.Phone]
			fmt.Printf("  task %d (slot %d) -> phone %d  cost=%.0f  paid=%.1f  utility=%.1f\n",
				a.Task, a.Slot, a.Phone, bid.Cost, out.Payments[a.Phone],
				out.Utility(a.Phone, bid.Cost))
		}
		fmt.Println()
	}

	// The same instance can also be drawn from the paper's Table I
	// workload model instead of by hand:
	scn := dynacrowd.DefaultScenario()
	scn.Slots = 20
	generated, err := scn.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	out, err := dynacrowd.RunOnline(generated)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := dynacrowd.OptimalWelfare(generated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated round: %d phones, %d tasks -> online welfare %.1f (%.0f%% of optimum %.1f)\n",
		generated.NumPhones(), generated.NumTasks(), out.Welfare, 100*out.Welfare/opt, opt)
}
