// Longrun: the market over many rounds. The paper's auction runs "round
// by round" (§III-B) and its evaluation remarks that the overpayment
// ratio's stability means "the mobile crowdsourcing system is stable
// even in the long run". This example runs 25 consecutive rounds with
// losing phones re-entering later rounds, prints the per-round economy,
// and evaluates that stability claim directly.
//
//	go run ./examples/longrun
package main

import (
	"fmt"
	"log"

	"dynacrowd/internal/core"
	"dynacrowd/internal/market"
	"dynacrowd/internal/workload"
)

func main() {
	scn := workload.DefaultScenario()
	scn.Slots = 30 // a brisker round keeps the demo quick

	for _, mech := range []core.Mechanism{&core.OnlineMechanism{}, &core.OfflineMechanism{}} {
		res, err := market.Run(market.Config{
			Rounds:            25,
			Scenario:          scn,
			Mechanism:         mech,
			Seed:              13,
			ReturnProbability: 0.6,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s: 25 rounds of %d slots, 60%% of losers retry ===\n", mech.Name(), scn.Slots)
		fmt.Printf("%5s %8s %8s %10s %8s\n", "round", "phones", "return", "welfare", "σ")
		for _, rec := range res.Rounds {
			if rec.Round%5 != 0 && rec.Round != 1 {
				continue // print a sample; the trend is what matters
			}
			m := rec.Metrics
			fmt.Printf("%5d %8d %8d %10.1f %8.3f\n",
				rec.Round, m.Phones, rec.Returning, m.Welfare, m.OverpaymentRatio)
		}
		drift := res.OverpaymentDrift()
		mean := res.MeanOverpayment()
		fmt.Printf("mean σ %.3f, drift between halves %.4f (%.1f%% of mean)\n",
			mean, drift, 100*drift/mean)
		if drift < 0.25*mean {
			fmt.Println("-> stable, matching the paper's long-run observation")
		} else {
			fmt.Println("-> drifting; the paper's claim does not hold at these settings")
		}
		fmt.Println()
	}
}
