// Truthfulness: an adversarial audit of three mechanisms. For every
// phone in the paper's Fig. 4 instance, the auditor exhaustively
// searches the feasible misreport space (delayed arrivals, advanced
// departures, scaled costs) for a report that beats honesty.
//
// The two mechanisms from the paper survive; the per-slot second-price
// auction falls exactly the way the paper's Fig. 5 predicts — phone 1
// profits by pretending to arrive two slots late.
//
//	go run ./examples/truthfulness
package main

import (
	"fmt"
	"log"

	"dynacrowd"
	"dynacrowd/internal/baseline"
)

func main() {
	// The paper's Fig. 4 instance: 7 phones, 5 slots, one task per slot.
	in := &dynacrowd.Instance{
		Slots: 5,
		Value: 20,
		Bids: []dynacrowd.Bid{
			{Phone: 0, Arrival: 2, Departure: 5, Cost: 3},
			{Phone: 1, Arrival: 1, Departure: 4, Cost: 5},
			{Phone: 2, Arrival: 3, Departure: 5, Cost: 11},
			{Phone: 3, Arrival: 4, Departure: 5, Cost: 9},
			{Phone: 4, Arrival: 2, Departure: 2, Cost: 4},
			{Phone: 5, Arrival: 3, Departure: 5, Cost: 8},
			{Phone: 6, Arrival: 1, Departure: 3, Cost: 6},
		},
		Tasks: []dynacrowd.Task{
			{ID: 0, Arrival: 1}, {ID: 1, Arrival: 2}, {ID: 2, Arrival: 3},
			{ID: 3, Arrival: 4}, {ID: 4, Arrival: 5},
		},
	}

	mechanisms := []dynacrowd.Mechanism{
		dynacrowd.NewOnline(),
		dynacrowd.NewOffline(),
		&baseline.SecondPricePerSlot{},
	}

	for _, mech := range mechanisms {
		fmt.Printf("=== auditing %s ===\n", mech.Name())
		results, err := dynacrowd.Audit(mech, in, dynacrowd.AuditOptions{})
		if err != nil {
			log.Fatal(err)
		}
		searched := 0
		honest := true
		for _, r := range results {
			searched += r.ReportsSearched
			if r.Gain() > 1e-9 {
				honest = false
				truth := in.Bids[r.Phone]
				fmt.Printf("  EXPLOITABLE: phone %d (true window [%d,%d], cost %.0f)\n",
					r.Phone, truth.Arrival, truth.Departure, truth.Cost)
				fmt.Printf("    best lie: report window [%d,%d], cost %.2f\n",
					r.BestBid.Arrival, r.BestBid.Departure, r.BestBid.Cost)
				fmt.Printf("    utility: honest %.2f -> lying %.2f (gain %.2f)\n",
					r.TruthfulUtility, r.BestUtility, r.Gain())
			}
		}
		if honest {
			fmt.Printf("  truthful: no profitable misreport among %d reports searched\n", searched)
		}
		fmt.Println()
	}

	fmt.Println("The second-price exploit above is the paper's Fig. 5 counterexample:")
	fmt.Println("phone 1 delays its reported arrival from slot 2 to slot 4, where the")
	fmt.Println("standing competition is weaker, and its payment rises from 4 to 8.")
	fmt.Println("The online mechanism's critical-value payment closes exactly this hole.")
}
