// Noisemap: an urban noise-mapping campaign (the Ear-Phone use case from
// the paper's introduction) run live through the streaming online
// auction. A city operator wants one noise sample per district per
// sampling window; commuters' phones drift in and out of the market.
//
// The example drives dynacrowd.OnlineAuction slot by slot the way the
// platform would: phones join when their owners stop using them, noise
// queries arrive as residents file complaints, winners are chosen and
// paid in real time, and at the end the campaign is compared against the
// clairvoyant offline optimum.
//
//	go run ./examples/noisemap
package main

import (
	"fmt"
	"log"

	"dynacrowd"
	"dynacrowd/internal/workload"
)

// district names give the tasks a story; task k samples district k mod N.
var districts = []string{
	"Riverside", "Old Town", "University", "Docklands", "Market Square",
}

func main() {
	const (
		slots = 24 // one sampling window per hour of the day
		value = 30 // city's value for one noise sample
	)
	rng := workload.NewRNG(7)

	auction, err := dynacrowd.NewOnlineAuction(slots, value)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== noise-mapping campaign: 24 hourly windows ==")
	var totalPaid float64
	served, requested := 0, 0
	for hour := 1; hour <= slots; hour++ {
		// Commuter phones become available in bursts around rush hours.
		arrivalRate := 2.0
		if hour >= 7 && hour <= 9 || hour >= 17 && hour <= 19 {
			arrivalRate = 6
		}
		var joining []dynacrowd.StreamBid
		for n := rng.Poisson(arrivalRate); n > 0; n-- {
			stay := dynacrowd.Slot(rng.UniformInt(1, 5))
			depart := dynacrowd.Slot(hour) + stay - 1
			if depart > slots {
				depart = slots
			}
			joining = append(joining, dynacrowd.StreamBid{
				Departure: depart,
				Cost:      rng.Uniform(2, 28), // battery+privacy cost varies by phone
			})
		}
		// Noise complaints trigger sampling queries, more at night.
		queries := rng.Poisson(1.5)
		if hour >= 22 || hour <= 2 {
			queries = rng.Poisson(4)
		}
		requested += queries

		res, err := auction.Step(joining, queries)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range res.Assignments {
			fmt.Printf("%02d:00  phone %-3d samples %-13s", hour, a.Phone, districts[int(a.Task)%len(districts)])
			fmt.Println()
			served++
		}
		if res.Unserved > 0 {
			fmt.Printf("%02d:00  %d quer%s went unserved (no phones available)\n",
				hour, res.Unserved, plural(res.Unserved, "y", "ies"))
		}
		for _, p := range res.Payments {
			totalPaid += p.Amount
			fmt.Printf("%02d:00  phone %-3d departs, paid %.2f\n", hour, p.Phone, p.Amount)
		}
	}

	out := auction.Outcome()
	opt, err := dynacrowd.OptimalWelfare(auction.Instance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== campaign summary ==")
	fmt.Printf("queries served: %d/%d\n", served, requested)
	fmt.Printf("social welfare: %.1f (offline optimum %.1f, ratio %.2f; guarantee ≥ 0.50)\n",
		out.Welfare, opt, out.Welfare/opt)
	fmt.Printf("city spend: %.1f over %d winners (overpayment ratio %.3f)\n",
		totalPaid, len(out.Allocation.Winners()), out.OverpaymentRatio(auction.Instance()))
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
