// Trafficwatch: a road-delay estimation service (the VTrack use case
// from the paper's introduction) that runs the auction round after round
// over a simulated week, comparing the deployable online mechanism with
// the clairvoyant offline benchmark and with the untruthful per-slot
// second-price auction on identical workloads.
//
//	go run ./examples/trafficwatch
package main

import (
	"fmt"
	"log"

	"dynacrowd"
	"dynacrowd/internal/baseline"
	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
)

func main() {
	// Each day is one auction round; weekday rush hours submit more
	// probe-vehicle queries than weekends.
	days := []struct {
		name     string
		taskRate float64
	}{
		{"Mon", 4}, {"Tue", 4}, {"Wed", 4}, {"Thu", 4}, {"Fri", 5},
		{"Sat", 1.5}, {"Sun", 1},
	}

	mechs := []core.Mechanism{
		&core.OnlineMechanism{},
		&core.OfflineMechanism{},
		&baseline.SecondPricePerSlot{},
	}

	fig := &stats.Figure{
		Title:  "Traffic-probe welfare by day (10 simulated weeks)",
		XLabel: "day", YLabel: "welfare",
	}
	sOnline := fig.AddSeries("online")
	sOffline := fig.AddSeries("offline")
	sSecond := fig.AddSeries("second-price")

	fmt.Println("== trafficwatch: one auction round per day, 10 weeks ==")
	for di, day := range days {
		scn := dynacrowd.DefaultScenario()
		scn.Slots = 36 // 5-minute windows over three rush hours
		scn.TaskRate = day.taskRate
		reps, err := sim.Compare(scn, sim.Seeds(uint64(di+1), 10), mechs, 0)
		if err != nil {
			log.Fatal(err)
		}
		sOnline.Add(float64(di+1), sim.Column(reps, 0, sim.Welfare))
		sOffline.Add(float64(di+1), sim.Column(reps, 1, sim.Welfare))
		sSecond.Add(float64(di+1), sim.Column(reps, 2, sim.Welfare))

		on := stats.Summarize(sim.Column(reps, 0, sim.Welfare))
		off := stats.Summarize(sim.Column(reps, 1, sim.Welfare))
		servedPct := 100 * stats.Summarize(sim.Column(reps, 0, sim.ServiceRate)).Mean
		fmt.Printf("%s: %5.1f probe queries/hr -> online welfare %8.1f (%.0f%% served), offline %8.1f, ratio %.2f\n",
			day.name, day.taskRate*12, on.Mean, servedPct, off.Mean, on.Mean/off.Mean)
	}

	fmt.Println()
	if err := fig.WriteTable(log.Writer()); err != nil {
		log.Fatal(err)
	}

	// The second-price baseline allocates identically to the online
	// mechanism (same greedy rule), so its welfare matches — but the
	// examples/truthfulness program shows why it still cannot be
	// deployed: drivers can game it by misreporting availability.
	fmt.Println("\nnote: second-price welfare equals online welfare by construction;")
	fmt.Println("run examples/truthfulness to see why its payments are still broken.")
}
