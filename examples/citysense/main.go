// Citysense: the complete Fig. 1 pipeline through the public API. A
// city's environment office submits sensing queries ("sample Old Town's
// noise hourly from 07:00 to 19:00"), the platform decomposes them into
// per-slot tasks, auctions them to commuter phones with the truthful
// online mechanism, collects the winners' (synthetic) readings, and
// aggregates per-query answers scored against the ground truth.
//
//	go run ./examples/citysense
package main

import (
	"fmt"
	"log"
	"math"

	"dynacrowd"
	"dynacrowd/internal/workload"
)

func main() {
	const (
		slots = 24 // one slot per hour
		value = 30 // the city's value per sample
	)

	queries := []dynacrowd.SensingQuery{
		{ID: 0, Region: "Riverside", From: 1, To: 24},
		{ID: 1, Region: "Old Town", From: 7, To: 19},
		{ID: 2, Region: "University", From: 9, To: 17},
		{ID: 3, Region: "Docklands", From: 1, To: 12},
	}

	// Commuter phone supply from the Table I model, scaled to a day.
	scn := dynacrowd.DefaultScenario()
	scn.Slots = slots
	scn.PhoneRate = 3
	supply, err := scn.Generate(2026)
	if err != nil {
		log.Fatal(err)
	}

	truth := dynacrowd.NewGroundTruth(7, 1.5) // σ=1.5 dB sensor noise
	res, err := dynacrowd.RunCampaign(slots, value, queries, supply.Bids, dynacrowd.NewOnline(), truth)
	if err != nil {
		log.Fatal(err)
	}

	// Also generate bids for the rush-hour profile to show the workload
	// substrate end to end.
	rush, err := scn.GenerateWithProfiles(2026, workload.RushHourProfile{Peak: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	rushRes, err := dynacrowd.RunCampaign(slots, value, queries, rush.Bids, dynacrowd.NewOnline(), dynacrowd.NewGroundTruth(7, 1.5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== citysense: %d queries over a %d-hour day, %d phones bidding ==\n\n",
		len(queries), slots, len(supply.Bids))
	fmt.Printf("%-14s %9s %10s %10s\n", "region", "coverage", "mean dB", "rmse dB")
	for _, a := range res.Answers {
		mean, rmse := "-", "-"
		if !math.IsNaN(a.Mean) {
			mean = fmt.Sprintf("%.1f", a.Mean)
			rmse = fmt.Sprintf("%.2f", a.RMSE)
		}
		fmt.Printf("%-14s %4d/%-4d %10s %10s\n", a.Region, a.Samples, a.Want, mean, rmse)
	}
	fmt.Printf("\nauction: welfare %.1f, city paid %.1f\n", res.Welfare, res.TotalPaid)
	fmt.Printf("data plane: %.0f%% coverage, %.2f dB mean aggregation error\n",
		100*res.MeanCoverage, res.MeanRMSE)
	fmt.Printf("\nwith rush-hour phone supply instead: %.0f%% coverage, error %.2f dB\n",
		100*rushRes.MeanCoverage, rushRes.MeanRMSE)
	fmt.Println("(coverage follows when the phones are on the street, not when the")
	fmt.Println(" queries want samples — supply-demand misalignment is visible here)")
}
